(** An append-only log of {!Event.t} with the queries the complexity
    analyses need.  The trace is the ground truth every measure in
    {!Cfc_core} is computed from. *)

type t

val create : unit -> t

val record : t -> pid:int -> Event.body -> Event.t
(** Append an event; assigns the next sequence number. *)

val length : t -> int

val truncate : t -> int -> unit
(** [truncate t n] forgets every event with sequence number >= [n] (the
    model checker's backtracking undo: appends after a truncation reuse
    the dropped sequence numbers).  Raises [Invalid_argument] unless
    [0 <= n <= length t]. *)

val get : t -> int -> Event.t
(** [get t i] is the event with sequence number [i]; O(1). *)

val iter : (Event.t -> unit) -> t -> unit
(** Stack-safe for traces of any length: a plain loop over the backing
    array, no recursion (regression-tested on a million-event trace). *)

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a
(** Left fold in event order.  Iterative (built on {!iter}), so deep
    recording runs cannot overflow the stack — same guarantee as
    {!fold_states}. *)

val to_list : t -> Event.t list

val accesses_of : ?from:int -> ?until:int -> pid:int -> t ->
  (Register.t * Event.access_kind) list
(** Shared-memory accesses of [pid] in the fragment [\[from, until)]
    (defaults: whole trace), in order. *)

val step_count : ?from:int -> ?until:int -> pid:int -> t -> int
(** Step complexity of [pid] in the fragment: number of its accesses. *)

val distinct_registers : ?from:int -> ?until:int -> pid:int -> t -> int
(** Register complexity of [pid] in the fragment: number of distinct
    registers accessed. *)

val rw_step_count : ?from:int -> ?until:int -> pid:int -> t -> int * int
(** [(reads, writes)] split of {!step_count} (Lemma 3's r and w). *)

val rw_register_count : ?from:int -> ?until:int -> pid:int -> t -> int * int
(** Distinct registers read, distinct registers written (a register both
    read and written counts in both). *)

val regions_at : t -> int -> nprocs:int -> Event.region array
(** [regions_at t i ~nprocs]: each process's region in the state {i just
    before} event [i] (processes start in [Remainder]).  O(i); prefer
    {!fold_states} for whole-trace scans. *)

val fold_states :
  nprocs:int -> ('a -> Event.region array -> Event.t -> 'a) -> 'a -> t -> 'a
(** Fold over events together with the region vector of the state before
    each event.  The array is updated in place between calls — copy it if
    you keep it.

    Crash–recovery: a [Recover] event resets the recovered process's
    region to [Remainder], mirroring {!Scheduler.recover} (the restarted
    incarnation begins from the top of its thunk).  A bare [Crash]
    deliberately leaves the stale region in place — a process that
    fail-stopped inside its critical section stays an occupant until it
    recovers (strong occupancy), so occupancy-window measures are never
    silently widened by a fail-stop. *)

val last : ?pid:int -> int -> t -> Event.t list
(** [last n t]: the final [n] events of the trace (those of [pid] only if
    given), oldest first.  Used by stall/error diagnostics. *)

val pp : Format.formatter -> t -> unit
(** Print the full event log, one event per line. *)
