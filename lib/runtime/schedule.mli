(** Schedule pickers: strategies that choose which process takes the next
    step.  A picker returns [None] to end the run early (e.g. a solo
    schedule once its process finished).  Pickers may be stateful; build a
    fresh one per run. *)

type picker = Scheduler.t -> int option

val solo : int -> picker
(** Only [pid] ever runs — the contention-free runs of §2.2. *)

val sequential : ?order:int list -> unit -> picker
(** Processes run to completion one after the other (default order
    ascending pid) — the contention-free runs of the naming problem
    (§3.2): "every process either decided before p starts, or starts only
    after p finishes". *)

val round_robin : unit -> picker
(** Cyclic one-step-each scheduling.  Also the "lockstep" adversary of the
    Theorem 6 lower-bound construction: identical processes take the same
    operation in every round. *)

val random : seed:int -> picker
(** Uniform choice among runnable processes, deterministic in [seed]. *)

val of_list : int list -> picker
(** Replay an explicit schedule; stops at the end of the list or when the
    requested pid is not runnable (used by the model checker). *)

val pref_then : int list -> picker -> picker
(** Follow the prefix, then switch to the continuation picker. *)

val biased : seed:int -> favored:int -> bias:int -> picker
(** Random, but the favored pid is [bias] times more likely — useful to
    starve/stress particular interleavings. *)
