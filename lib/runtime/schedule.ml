type picker = Scheduler.t -> int option

let solo pid t =
  match Scheduler.status t pid with
  | Scheduler.Runnable -> Some pid
  | Scheduler.Halted | Scheduler.Crashed | Scheduler.Errored _ -> None

let sequential ?order () =
  let remaining = ref order in
  fun t ->
    let order =
      match !remaining with
      | Some o -> o
      | None ->
        let o = List.init (Scheduler.nprocs t) Fun.id in
        remaining := Some o;
        o
    in
    let rec pick = function
      | [] -> None
      | pid :: rest -> (
        match Scheduler.status t pid with
        | Scheduler.Runnable ->
          remaining := Some (pid :: rest);
          Some pid
        | Scheduler.Halted | Scheduler.Crashed | Scheduler.Errored _ ->
          pick rest)
    in
    pick order

let round_robin () =
  let last = ref (-1) in
  fun t ->
    let n = Scheduler.nprocs t in
    let rec find k =
      if k > n then None
      else
        let pid = (!last + k) mod n in
        match Scheduler.status t pid with
        | Scheduler.Runnable ->
          last := pid;
          Some pid
        | Scheduler.Halted | Scheduler.Crashed | Scheduler.Errored _ ->
          find (k + 1)
    in
    find 1

let random ~seed =
  let st = Random.State.make [| seed |] in
  fun t ->
    let n = Scheduler.nprocs t in
    (* Rejection sampling keeps picking O(1) while most processes are
       runnable; fall back to an explicit scan (still uniform) when the
       runnable set has thinned out. *)
    let rec attempt k =
      if k = 0 then begin
        match Scheduler.runnable t with
        | [] -> None
        | procs ->
          Some (List.nth procs (Random.State.int st (List.length procs)))
      end
      else begin
        let pid = Random.State.int st n in
        match Scheduler.status t pid with
        | Scheduler.Runnable -> Some pid
        | Scheduler.Halted | Scheduler.Crashed | Scheduler.Errored _ ->
          attempt (k - 1)
      end
    in
    attempt 16

let of_list schedule =
  let rest = ref schedule in
  fun t ->
    match !rest with
    | [] -> None
    | pid :: tl -> (
      rest := tl;
      match Scheduler.status t pid with
      | Scheduler.Runnable -> Some pid
      | Scheduler.Halted | Scheduler.Crashed | Scheduler.Errored _ -> None)

let pref_then prefix k =
  let rest = ref prefix in
  fun t ->
    match !rest with
    | pid :: tl when Scheduler.status t pid = Scheduler.Runnable ->
      rest := tl;
      Some pid
    | _ :: tl ->
      rest := tl;
      k t
    | [] -> k t

let biased ~seed ~favored ~bias =
  let st = Random.State.make [| seed |] in
  fun t ->
    match Scheduler.runnable t with
    | [] -> None
    | procs ->
      let weights =
        List.map (fun pid -> if pid = favored then bias else 1) procs
      in
      let total = List.fold_left ( + ) 0 weights in
      let x = Random.State.int st total in
      let rec pick procs weights acc =
        match (procs, weights) with
        | [ pid ], _ -> pid
        | pid :: ps, w :: ws ->
          if x < acc + w then pid else pick ps ws (acc + w)
        | _, _ -> assert false
      in
      Some (pick procs weights 0)
