(** Drive a set of processes to completion under a schedule, producing the
    run's trace.  This is the single entry point harnesses use; custom
    loops can still use {!Scheduler.step} directly. *)

type stopped =
  | Quiescent     (** every process halted, crashed for good, or errored *)
  | Out_of_steps  (** [max_steps] scheduler steps executed *)
  | Picker_done   (** the picker returned [None] with processes pending *)

type outcome = {
  memory : Memory.t;
  trace : Trace.t;
  scheduler : Scheduler.t;
  completed : bool;   (** [stopped = Quiescent] (kept for compatibility) *)
  stopped : stopped;  (** why the run ended *)
  total_steps : int;  (** shared-memory accesses performed in the run *)
}

exception Process_error of {
  pid : int;             (** the process that raised *)
  steps : int;           (** shared-memory accesses it had performed *)
  error : exn;           (** the underlying exception *)
  recent : Event.t list; (** its last few trace events, oldest first *)
}
(** Raised by {!run} when a process errored (an algorithm bug or a model
    violation).  A printer is registered, so printing the exception shows
    the pid, step count, and trailing events. *)

val run :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  ?faults:Fault.plan ->
  memory:Memory.t ->
  pick:Schedule.picker ->
  (unit -> unit) array ->
  outcome
(** [run ~memory ~pick procs] steps processes chosen by [pick] until the
    picker returns [None], all processes are quiescent, or [max_steps]
    (default [1_000_000]) scheduler steps have executed.

    [crash_at] is a list of [(step_index, pid)]: just before scheduler step
    number [step_index] (0-based), [pid] is fail-stopped.  [faults] is the
    general crash–recovery plan language ({!Fault.plan}); [crash_at] is
    sugar for a plan of crash points and both may be combined.  The merged
    plan is checked with {!Fault.validate} ([Invalid_argument] on
    duplicates, out-of-range pids, crashing an already-crashed pid, …).
    If all runnable processes are exhausted while fault points remain, the
    step clock fast-forwards to the next point so scheduled recoveries
    still fire.  Raises {!Process_error} if a process errored — errors are
    never silent. *)

val run_collect :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  ?faults:Fault.plan ->
  memory:Memory.t ->
  pick:Schedule.picker ->
  (unit -> unit) array ->
  outcome * exn option
(** Like {!run} but returns a process error instead of raising (used by
    tests that assert on model violations). *)

(** {1 Stall / error diagnosis} *)

type proc_report = {
  d_pid : int;
  d_status : Scheduler.status;
  d_region : Event.region;
  d_steps : int;
  d_recent : Event.t list;  (** last trace events of this pid, oldest first *)
}

val diagnose : ?recent:int -> outcome -> proc_report list
(** Structured per-process post-mortem of a run: status, protocol region,
    step count, and the last [recent] (default 5) trace events of each
    process.  Use on any outcome — most useful when [stopped] is not
    [Quiescent] (stalled run) or a process errored. *)

val pp_stopped : Format.formatter -> stopped -> unit
val pp_status : Format.formatter -> Scheduler.status -> unit

val pp_diagnosis : Format.formatter -> outcome -> unit
(** Render {!diagnose} for humans: stop reason, then one block per
    process. *)
