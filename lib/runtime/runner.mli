(** Drive a set of processes to completion under a schedule, producing the
    run's trace.  This is the single entry point harnesses use; custom
    loops can still use {!Scheduler.step} directly. *)

type outcome = {
  memory : Memory.t;
  trace : Trace.t;
  scheduler : Scheduler.t;
  completed : bool;
      (** every process halted or crashed (as opposed to the step budget
          running out or the picker giving up) *)
  total_steps : int;  (** shared-memory accesses performed in the run *)
}

val run :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  memory:Memory.t ->
  pick:Schedule.picker ->
  (unit -> unit) array ->
  outcome
(** [run ~memory ~pick procs] steps processes chosen by [pick] until the
    picker returns [None], all processes are quiescent, or [max_steps]
    (default [1_000_000]) scheduler steps have executed.

    [crash_at] is a list of [(step_index, pid)]: just before scheduler step
    number [step_index] (0-based), [pid] is fail-stopped.  Raises
    [Invalid_argument] if a process errored (an algorithm bug or a model
    violation) — errors are never silent. *)

val run_collect :
  ?max_steps:int ->
  ?crash_at:(int * int) list ->
  memory:Memory.t ->
  pick:Schedule.picker ->
  (unit -> unit) array ->
  outcome * exn option
(** Like {!run} but returns a process error instead of raising (used by
    tests that assert on model violations). *)
