(** A shared register cell: the atomic unit of the paper's model.

    A register has a width in bits (the paper's atomicity parameter [l] is
    the maximum width accessed by an algorithm in one step) and, for
    single-bit registers used by the naming problem, an optional
    {!Cfc_base.Model.t} restricting which of the eight operations are
    supported.  Semantic operations here mutate the cell directly; the
    simulator invokes them from the scheduler so that every access is a
    single atomic step of the interleaving. *)

type t = private {
  id : int;          (** unique within the owning {!Memory.t} arena *)
  name : string;     (** for traces and error messages *)
  width : int;       (** size in bits, 1..62 *)
  model : Cfc_base.Model.t option;
      (** [Some m]: a §3.1 bit register supporting exactly the ops of [m];
          [None]: a plain atomic read/write register *)
  init : int;        (** initial value *)
  mutable value : int;
}

val make :
  id:int -> name:string -> width:int -> model:Cfc_base.Model.t option ->
  init:int -> t
(** Raises [Invalid_argument] on a bad width, an init that does not fit,
    or a model given for a register wider than one bit. *)

val read : t -> int
(** Semantic read.  Raises [Invalid_argument] if the register's model does
    not include [read]. *)

val write : t -> int -> unit
(** Semantic write.  Raises [Invalid_argument] if the value does not fit or
    the model does not include the corresponding write operation. *)

val write_field : t -> index:int -> width:int -> int -> unit
(** Multi-grain sub-word store (see {!Cfc_base.Mem_intf.MEM.write_field}).
    Raises [Invalid_argument] on model-restricted bits, out-of-range
    fields, or oversized values. *)

val bit_op : t -> Cfc_base.Ops.t -> int option
(** Apply a single-bit operation; returns the old value when the operation
    returns one.  Raises [Invalid_argument] on non-bit registers or
    operations outside the model. *)

val fetch_and_store : t -> int -> int
(** Atomic exchange; returns the old value.  Model-unrestricted registers
    only. *)

val compare_and_set : t -> expected:int -> int -> bool
(** Atomic compare-and-swap; true iff the swap happened. *)

val reset : t -> unit
(** Restore the initial value (used between replays). *)

val restore : t -> int -> unit
(** [restore r v] sets the cell back to a previously observed value,
    bypassing model/width checks (the value was legal when captured).
    Used by the model checker's checkpoint/undo machinery; not a semantic
    operation — never call it from algorithm code. *)

val pp : Format.formatter -> t -> unit
