type t = { mutable events : Event.t array; mutable len : int }

let create () = { events = Array.make 64 { Event.seq = 0; pid = 0; body = Event.Crash }; len = 0 }

let ensure t =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) t.events.(0) in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end

let record t ~pid body =
  ensure t;
  let e = { Event.seq = t.len; pid; body } in
  t.events.(t.len) <- e;
  t.len <- t.len + 1;
  e

let length t = t.len

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Trace.truncate";
  t.len <- n

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun e -> acc := f !acc e) t;
  !acc

let to_list t = List.init t.len (fun i -> t.events.(i))

let in_range ?(from = 0) ?until t f =
  let until = match until with Some u -> min u t.len | None -> t.len in
  for i = max 0 from to until - 1 do
    f t.events.(i)
  done

let accesses_of ?from ?until ~pid t =
  let acc = ref [] in
  in_range ?from ?until t (fun e ->
      match e.Event.body with
      | Event.Access (r, k) when e.Event.pid = pid -> acc := (r, k) :: !acc
      | Event.Access _ | Event.Region_change _ | Event.Crash | Event.Recover -> ());
  List.rev !acc

let step_count ?from ?until ~pid t =
  let n = ref 0 in
  in_range ?from ?until t (fun e ->
      match e.Event.body with
      | Event.Access _ when e.Event.pid = pid -> incr n
      | Event.Access _ | Event.Region_change _ | Event.Crash | Event.Recover -> ());
  !n

let distinct_in ?from ?until ~pid ~keep t =
  let seen = Hashtbl.create 16 in
  in_range ?from ?until t (fun e ->
      match e.Event.body with
      | Event.Access (r, k) when e.Event.pid = pid && keep k ->
        Hashtbl.replace seen r.Register.id ()
      | Event.Access _ | Event.Region_change _ | Event.Crash | Event.Recover -> ());
  Hashtbl.length seen

let distinct_registers ?from ?until ~pid t =
  distinct_in ?from ?until ~pid ~keep:(fun _ -> true) t

let rw_step_count ?from ?until ~pid t =
  let r = ref 0 and w = ref 0 in
  in_range ?from ?until t (fun e ->
      match e.Event.body with
      | Event.Access (_, k) when e.Event.pid = pid ->
        if Event.is_write k then incr w else incr r
      | Event.Access _ | Event.Region_change _ | Event.Crash | Event.Recover -> ());
  (!r, !w)

let rw_register_count ?from ?until ~pid t =
  ( distinct_in ?from ?until ~pid ~keep:Event.is_read t,
    distinct_in ?from ?until ~pid ~keep:Event.is_write t )

(* Region bookkeeping mirrors the scheduler's: a [Recover] restarts the
   process from the top with fresh local state, so the new incarnation
   begins in [Remainder] (Scheduler.recover sets exactly that).  A bare
   [Crash] leaves the stale region in place on purpose — a process that
   fail-stopped inside its critical section is still an occupant as far
   as trace-level occupancy is concerned (the strong-occupancy reading
   of Spec.mutual_exclusion_recoverable). *)
let fold_states ~nprocs f acc t =
  let regions = Array.make nprocs Event.Remainder in
  let acc = ref acc in
  iter
    (fun e ->
      acc := f !acc regions e;
      match e.Event.body with
      | Event.Region_change r -> regions.(e.Event.pid) <- r
      | Event.Recover -> regions.(e.Event.pid) <- Event.Remainder
      | Event.Access _ | Event.Crash -> ())
    t;
  !acc

let regions_at t i ~nprocs =
  let regions = Array.make nprocs Event.Remainder in
  for j = 0 to min i t.len - 1 do
    match t.events.(j).Event.body with
    | Event.Region_change r -> regions.(t.events.(j).Event.pid) <- r
    | Event.Recover -> regions.(t.events.(j).Event.pid) <- Event.Remainder
    | Event.Access _ | Event.Crash -> ()
  done;
  regions

let last ?pid n t =
  let keep e = match pid with None -> true | Some p -> e.Event.pid = p in
  let acc = ref [] in
  let i = ref (t.len - 1) in
  while List.length !acc < n && !i >= 0 do
    if keep t.events.(!i) then acc := t.events.(!i) :: !acc;
    decr i
  done;
  !acc

let pp ppf t =
  iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) t
