(** The deterministic scheduler: holds every process as a pending
    {!Proc.suspension} and advances one process by exactly one
    shared-memory access per [step] call.  Region changes and pauses are
    free (they are not steps in the paper's model) and are processed
    transparently, except that a pause ends the current [step] call so
    schedulers regain control inside access-free loops.

    The scheduler also supports checkpoint/undo ({!snapshot}/{!restore})
    for the incremental model checker.  OCaml's one-shot continuations
    cannot be cloned, so a checkpoint stores only scalar per-process
    state; a process whose continuation was consumed by an abandoned
    branch is rebuilt lazily by restarting its thunk and replaying its
    recorded observations (supplied by the [oracle] given at creation). *)

type status =
  | Runnable   (** has a pending suspension *)
  | Halted     (** the process function returned *)
  | Crashed    (** fail-stop injected *)
  | Errored of exn  (** the process raised *)

type t

val create :
  ?oracle:(int -> Event.access_kind list) ->
  memory:Memory.t -> trace:Trace.t -> (unit -> unit) array -> t
(** [create ~memory ~trace procs]: process [i] runs [procs.(i)] with pid
    [i].  Processes are started lazily at their first [step], so a process
    that is never scheduled has taken no steps ("not started" in the
    paper's contention-free definition).

    [oracle pid] must return the access kinds process [pid] has observed
    since its last (re)start, oldest first — exactly the [Event.Access]
    payloads recorded in the trace.  It is required for {!restore}:
    rebuilding an invalidated suspension replays the thunk against these
    answers.  Omit it for plain (non-backtracking) runs. *)

val nprocs : t -> int
val status : t -> int -> status
val region : t -> int -> Event.region
(** Current protocol region of a process (starts as [Remainder]). *)

val steps_taken : t -> int -> int
(** Shared-memory accesses this process has performed so far. *)

val runnable : t -> int list
(** Pids that can still take steps, ascending. *)

val all_quiescent : t -> bool
(** No process is runnable (all halted/crashed/errored). *)

type step_result =
  | Progress      (** one access performed, or advanced to a pause *)
  | Finished      (** the process completed during this call *)
  | Not_runnable  (** it was already halted/crashed/errored *)

val step : t -> int -> step_result
(** Advance process [pid] by one shared-memory access (absorbing any free
    region-change events on the way).  Errors raised by the process are
    captured in its status. *)

val crash : t -> int -> unit
(** Inject a fail-stop crash: the process is unwound with {!Proc.Crashed},
    a [Crash] event is recorded, and it is not runnable again unless
    {!recover} is called (crash–recovery model). *)

val recover : t -> int -> unit
(** Crash–recovery model (Golab–Ramaraju): restart a [Crashed] process
    with fresh local state.  The process thunk is re-invoked from the top
    at its next [step]; shared memory persists untouched.  A [Recover]
    event is recorded and the process region resets to [Remainder].
    No-op if the process is not currently [Crashed]. *)

val started : t -> int -> bool
(** Whether the process has been scheduled at least once (stays true
    after a crash; reset by {!recover}). *)

val replay_safe : t -> bool
(** False once some process caught a register-op exception and continued:
    that answer is invisible to observation replay, so {!restore} can no
    longer rebuild suspensions faithfully.  The incremental model checker
    checks this and falls back to whole-schedule replay. *)

type snap
(** A checkpoint of the scheduler's logical state (statuses, regions,
    step/call counters — O(nprocs), no continuations).  Register values
    and the trace are checkpointed separately by the caller
    ({!Memory.values}, {!Trace.length}/{!Trace.truncate}). *)

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Roll the scheduler back to [snap].  Processes untouched since the
    snapshot (same version stamp) keep their live suspension; others are
    rebuilt lazily at their next {!step} by observation replay through
    the creation-time [oracle].  Raises [Invalid_argument] if the
    scheduler was created without an oracle.

    Raises {!Replay_mismatch} later (at the rebuilding [step]) if the
    replayed effect stream diverges from the recorded observations —
    that would mean a process is nondeterministic or the caller's oracle
    is out of sync. *)

exception Replay_mismatch of string
