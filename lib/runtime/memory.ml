type t = { mutable regs : Register.t list (* reversed *); mutable next : int }

let create () = { regs = []; next = 0 }

let alloc ?name ?model ~width ~init t =
  let id = t.next in
  let name = match name with Some n -> n | None -> Printf.sprintf "r%d" id in
  let r = Register.make ~id ~name ~width ~model ~init in
  t.next <- id + 1;
  t.regs <- r :: t.regs;
  r

let alloc_array ?name ?model ~width ~init t k =
  let base = match name with Some n -> n | None -> "a" in
  Array.init k (fun i ->
      alloc ~name:(Printf.sprintf "%s[%d]" base i) ?model ~width ~init t)

let registers t = List.rev t.regs
let size t = t.next

let max_width t =
  List.fold_left (fun acc r -> max acc r.Register.width) 0 t.regs

let reset t = List.iter Register.reset t.regs

let dump t =
  registers t
  |> List.map (fun r -> Printf.sprintf "%s=%d" r.Register.name r.Register.value)
  |> String.concat " "

let fingerprint t =
  List.fold_left
    (fun acc r -> (acc * 1000003) lxor r.Register.value)
    (Hashtbl.hash t.next) t.regs
