type t = {
  mutable regs : Register.t list (* reversed *);
  mutable next : int;
  mutable regs_arr : Register.t array;
      (* cache of [regs] (same reverse order) for the hot snapshot paths;
         invalidated by [alloc], rebuilt on demand *)
}

let create () = { regs = []; next = 0; regs_arr = [||] }

let alloc ?name ?model ~width ~init t =
  let id = t.next in
  let name = match name with Some n -> n | None -> Printf.sprintf "r%d" id in
  let r = Register.make ~id ~name ~width ~model ~init in
  t.next <- id + 1;
  t.regs <- r :: t.regs;
  t.regs_arr <- [||];
  r

let alloc_array ?name ?model ~width ~init t k =
  let base = match name with Some n -> n | None -> "a" in
  Array.init k (fun i ->
      alloc ~name:(Printf.sprintf "%s[%d]" base i) ?model ~width ~init t)

let registers t = List.rev t.regs
let size t = t.next

let max_width t =
  List.fold_left (fun acc r -> max acc r.Register.width) 0 t.regs

let reset t = List.iter Register.reset t.regs

let regs_arr t =
  if Array.length t.regs_arr <> t.next then t.regs_arr <- Array.of_list t.regs;
  t.regs_arr

(* Values in reverse allocation order — [restore_values] consumes the
   same order, so the two stay consistent without materializing the
   forward list. *)
let values t =
  let regs = regs_arr t in
  let a = Array.make t.next 0 in
  for i = 0 to t.next - 1 do
    a.(i) <- regs.(i).Register.value
  done;
  a

let restore_values t a =
  if Array.length a <> t.next then invalid_arg "Memory.restore_values";
  let regs = regs_arr t in
  for i = 0 to t.next - 1 do
    Register.restore regs.(i) a.(i)
  done

let dump t =
  registers t
  |> List.map (fun r -> Printf.sprintf "%s=%d" r.Register.name r.Register.value)
  |> String.concat " "

let fingerprint t =
  List.fold_left
    (fun acc r -> (acc * 1000003) lxor r.Register.value)
    (Hashtbl.hash t.next) t.regs
