(** Events and execution regions: the vocabulary of run traces.

    A run in the paper (§2.2) is an alternating sequence of states and
    events.  We record the events; states are recoverable because events
    are deterministic state transformers.  Region-change events mark where
    a process is in its protocol (remainder / entry / critical / exit /
    decided), which is exactly the information the complexity definitions
    of §2.2 and §3.2 quantify over. *)

type region =
  | Remainder      (** outside the protocol *)
  | Trying         (** in the entry code (mutex) or executing (naming) *)
  | Critical       (** in the critical section *)
  | Exiting        (** in the exit code *)
  | Decided of int (** terminated with an output value (naming: the chosen
                       name; contention detection: 0 or 1) *)
  | Halted         (** the process function returned *)

val region_equal : region -> region -> bool
val pp_region : Format.formatter -> region -> unit

type access_kind =
  | A_read of int                          (** value read *)
  | A_write of int                         (** value written *)
  | A_field of int * int * int             (** multi-grain sub-word write:
                                               (index, width, value) *)
  | A_xchg of int * int                    (** fetch-and-store:
                                               (written, old) *)
  | A_cas of int * int * bool              (** compare-and-swap:
                                               (expected, desired, success) *)
  | A_bit of Cfc_base.Ops.t * int option   (** bit op and returned value *)

val is_write : access_kind -> bool
(** Whether the access can modify the register ([A_read] and a bit [read]
    cannot; all other bit operations count as writes, matching the paper's
    read/write step distinction in Lemma 3). *)

val is_read : access_kind -> bool
(** Complement of {!is_write} for the two-way classification used by the
    read-step / write-step complexity split. *)

type t = {
  seq : int;       (** global sequence number within the trace *)
  pid : int;       (** the process the event belongs to *)
  body : body;
}

and body =
  | Access of Register.t * access_kind  (** one shared-memory step *)
  | Region_change of region
  | Crash                               (** crash failure: local state lost;
                                            fail-stop unless followed by a
                                            [Recover] of the same pid *)
  | Recover                             (** crash–recovery model: the
                                            process restarts from the top of
                                            its program with fresh local
                                            state; shared memory persists *)

val pp : Format.formatter -> t -> unit
