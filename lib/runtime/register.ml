open Cfc_base

type t = {
  id : int;
  name : string;
  width : int;
  model : Model.t option;
  init : int;
  mutable value : int;
}

let fits ~width v = v >= 0 && (width >= 62 || v < 1 lsl width)

(* Every write-class operation funnels its operand through this check, so
   an out-of-width value is rejected at access time with a message naming
   the operation, the register and its declared width — the atomicity
   parameter [l] is enforced on every step, not just at allocation. *)
let check_fits r ~op v =
  if not (fits ~width:r.width v) then
    invalid_arg
      (Printf.sprintf
         "register %s: %s value %d does not fit in declared width %d bits"
         r.name op v r.width)

let make ~id ~name ~width ~model ~init =
  if width < 1 || width > 62 then
    invalid_arg (Printf.sprintf "Register.make %s: width %d" name width);
  if not (fits ~width init) then
    invalid_arg
      (Printf.sprintf "Register.make %s: init %d does not fit in %d bits"
         name init width);
  (match model with
  | Some _ when width <> 1 ->
    invalid_arg
      (Printf.sprintf "Register.make %s: operation models apply to bits only"
         name)
  | _ -> ());
  { id; name; width; model; init; value = init }

let require_op r op =
  match r.model with
  | None -> ()
  | Some m ->
    if not (Model.mem op m) then
      invalid_arg
        (Printf.sprintf "register %s: operation %s not in model %s" r.name
           (Ops.to_string op) (Model.to_string m))

let read r =
  require_op r Ops.Read;
  r.value

let write r v =
  check_fits r ~op:"write" v;
  (match r.model with
  | None -> ()
  | Some _ -> require_op r (if v = 0 then Ops.Write_0 else Ops.Write_1));
  r.value <- v

let bit_op r op =
  if r.width <> 1 then
    invalid_arg
      (Printf.sprintf "register %s: bit operations need a 1-bit register"
         r.name);
  require_op r op;
  let v', ret = Ops.apply op r.value in
  r.value <- v';
  ret

let write_field r ~index ~width v =
  (match r.model with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "register %s: write_field on a model-restricted bit"
         r.name)
  | None -> ());
  if width < 1 || index < 0 || (index + 1) * width > r.width then
    invalid_arg
      (Printf.sprintf "register %s: field %d of width %d out of range" r.name
         index width);
  if not (fits ~width v) then
    invalid_arg
      (Printf.sprintf "register %s: field value %d does not fit in %d bits"
         r.name v width);
  let shift = index * width in
  let mask = ((1 lsl width) - 1) lsl shift in
  r.value <- r.value land lnot mask lor (v lsl shift)

let require_plain r what =
  match r.model with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "register %s: %s on a model-restricted bit" r.name what)
  | None -> ()

let fetch_and_store r v =
  require_plain r "fetch_and_store";
  check_fits r ~op:"fetch_and_store" v;
  let old = r.value in
  r.value <- v;
  old

let compare_and_set r ~expected v =
  require_plain r "compare_and_set";
  check_fits r ~op:"compare_and_set" v;
  if r.value = expected then begin
    r.value <- v;
    true
  end
  else false

let reset r = r.value <- r.init

let restore r v = r.value <- v

let pp ppf r =
  Format.fprintf ppf "%s#%d[w=%d]=%d" r.name r.id r.width r.value
