open Cfc_base

let mem arena : Mem_intf.mem =
  (module struct
    type reg = Register.t

    let alloc ?name ~width ~init () = Memory.alloc ?name ~width ~init arena

    let alloc_bit ?name ~model ~init () =
      Memory.alloc ?name ~model ~width:1 ~init arena

    let alloc_array ?name ~width ~init k =
      Memory.alloc_array ?name ~width ~init arena k

    let alloc_bit_array ?name ~model ~init k =
      Memory.alloc_array ?name ~model ~width:1 ~init arena k

    let read r = Effect.perform (Proc.E_read r)
    let write r v = Effect.perform (Proc.E_write (r, v))

    let write_field r ~index ~width v =
      Effect.perform (Proc.E_write_field (r, index, width, v))
    let bit_op r op = Effect.perform (Proc.E_bit_op (r, op))
    let fetch_and_store r v = Effect.perform (Proc.E_xchg (r, v))

    let compare_and_set r ~expected v =
      Effect.perform (Proc.E_cas (r, expected, v))
    let pause () = Effect.perform Proc.E_pause
  end : Mem_intf.MEM)
