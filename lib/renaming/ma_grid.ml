(** The Moir–Anderson splitter grid (1995): one-shot wait-free renaming
    whose cost adapts to contention — the contention-free path is a
    single splitter (4 steps, 2 registers, name 1), and with [k]
    participants every process stops within diagonal [k - 1], so names
    come from [1..k(k+1)/2] regardless of how large the original id
    space was.

    A triangular grid of splitters (the same primitive as
    {!Cfc_mutex.Splitter}, sound here because original ids are distinct).
    Each splitter admits at most one "stop"; a process that reads the
    gate set moves right, one that loses the id check moves down.  Of [j]
    processes entering a splitter at most [j - 1] move right (the last
    one to write [x] before the first gate write cannot see the gate
    clear ... the standard argument: the first process to write the gate
    saw every later x-writer still ahead) and at most [j - 1] move down,
    so the occupancy of each diagonal strictly decreases and a process
    alone in a splitter always stops. *)

open Cfc_base

let name = "moir-anderson-grid"
let name_space ~n:_ ~k = k * (k + 1) / 2
let predicted_cf_steps = Some 4
let predicted_cf_registers = Some 2

(* Cells enumerated by diagonal: (r, c) with d = r + c gets
   d(d+1)/2 + r + 1, so diagonal d uses names d(d+1)/2+1 .. (d+1)(d+2)/2
   — exactly the adaptive k(k+1)/2 bound. *)
let cell_index ~r ~c =
  let d = r + c in
  (d * (d + 1) / 2) + r + 1

module Make (M : Mem_intf.MEM) = struct
  type splitter = { x : M.reg; y : M.reg }

  type t = { n : int; cells : splitter array array (* cells.(r).(c) *) }

  let create ~n =
    if n < 1 then invalid_arg "Ma_grid.create: n";
    let width = Ixmath.bits_needed n in
    let cells =
      Array.init n (fun r ->
          Array.init
            (n - r)
            (fun c ->
              {
                x =
                  M.alloc ~name:(Printf.sprintf "ma.%d.%d.x" r c) ~width
                    ~init:0 ();
                y =
                  M.alloc ~name:(Printf.sprintf "ma.%d.%d.y" r c) ~width:1
                    ~init:0 ();
              }))
    in
    { n; cells }

  type outcome = Stop | Right | Down

  let splitter s ~id =
    M.write s.x id;
    if M.read s.y = 1 then Right
    else begin
      M.write s.y 1;
      if M.read s.x = id then Stop else Down
    end

  let rename t ~me =
    let id = me + 1 in
    let rec walk r c =
      (* The last diagonal always stops its (necessarily lone) visitor;
         the assert documents the grid-occupancy invariant. *)
      assert (r + c < t.n);
      match splitter t.cells.(r).(c) ~id with
      | Stop -> cell_index ~r ~c
      | Right -> walk r (c + 1)
      | Down -> walk (r + 1) c
    in
    walk 0 0
end
