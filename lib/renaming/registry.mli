(** Registry of renaming algorithms. *)

type alg = (module Renaming_intf.ALG)

val ma_grid : alg
val all : alg list
