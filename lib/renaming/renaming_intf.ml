(** Interfaces for one-shot renaming: the third coordination problem the
    paper's introduction names ("mutual exclusion, consensus, and
    renaming") and the natural contention-sensitive companion to its
    theme — the Moir–Anderson construction below decides in O(1) steps
    precisely when contention is absent.

    Unlike the naming problem of §3 (identical processes, symmetry to
    break), renaming starts from processes that already hold {e large}
    distinct ids in [0..n-1] and must acquire distinct {e small} names
    whose range depends only on the number [k] of actual participants —
    wait-free, with crashes allowed. *)

open Cfc_base

module type ALG = sig
  val name : string

  val name_space : n:int -> k:int -> int
  (** Upper bound on the largest name handed out when at most [k] of the
      [n] processes participate (for the splitter grid: [k(k+1)/2]). *)

  val predicted_cf_steps : int option
  (** Exact solo-run step count (contention-sensitivity: a constant). *)

  val predicted_cf_registers : int option

  module Make (M : Mem_intf.MEM) : sig
    type t

    val create : n:int -> t

    val rename : t -> me:int -> int
    (** Returns this process's new name, in [1..name_space ~n ~k] where
        [k] is the number of processes that actually take steps. *)
  end
end
