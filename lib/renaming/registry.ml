(** Registry of renaming algorithms. *)

type alg = (module Renaming_intf.ALG)

let ma_grid : alg = (module Ma_grid)
let all : alg list = [ ma_grid ]
