(** The Moir–Anderson splitter grid: adaptive one-shot renaming with
    O(1) contention-free cost and names in [1..k(k+1)/2] for [k]
    participants; see the implementation header for the grid-occupancy
    argument. *)

val cell_index : r:int -> c:int -> int
(** Diagonal enumeration of grid cells: [(r, c)] with [d = r + c] gets
    name [d(d+1)/2 + r + 1] — a bijection onto [1..n(n+1)/2] over the
    triangle. *)

include Renaming_intf.ALG
