(** Minimal fixed-width ASCII table rendering for benchmark and example
    output.  Kept dependency-free so every layer can print tables. *)

type t

val create : header:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with [""];
    longer rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render with box-drawing in plain ASCII ([+-|]).  Columns are sized to
    the widest cell.  Ends with a newline. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)
