(** Small integer/float math helpers used throughout the library.

    All logarithms are base 2 unless stated otherwise.  The complexity
    bounds of the paper are expressed with [log n] and [log log n]; the
    helpers here centralize the exact conventions (ceilings, domains) so
    that every module computes them identically.

    Every precondition violation raises [Invalid_argument] (no asserts,
    so the checks survive [-noassert]), and the power-growing loops are
    hardened against silent wraparound: the log-domain helpers return
    correct answers for arguments all the way up to [max_int], and
    {!ipow} raises instead of wrapping. *)

val pow2 : int -> int
(** [pow2 k] is [2{^k}].  Raises unless [0 <= k < 62]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] holds iff [n] is a positive power of two. *)

val floor_log2 : int -> int
(** [floor_log2 n] is the greatest [k] with [2{^k} <= n].
    Requires [n >= 1]; exact for every [n] up to [max_int]. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the least [k] with [2{^k} >= n].
    Requires [n >= 1]; [ceil_log2 1 = 0]. *)

val bits_needed : int -> int
(** [bits_needed v] is the number of bits needed to store any value in
    [0..v], i.e. [ceil_log2 (v + 1)] but at least 1.  Requires [v >= 0]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [⌈a / b⌉] for positive [b] and nonnegative [a];
    computed division-first, so exact even for [a] near [max_int]. *)

val ceil_log : base:int -> int -> int
(** [ceil_log ~base n] is the least [d >= 1] with [base{^d} >= n]; by
    convention it returns [1] when [n <= base] (a single tree level).
    Requires [base >= 2] and [n >= 1]; exact for every [n] up to
    [max_int]. *)

val log2f : float -> float
(** Base-2 logarithm on floats. *)

val ipow : int -> int -> int
(** [ipow b e] is [b{^e}] for [b >= 0] and [e >= 0].  Raises
    [Invalid_argument] if the result would exceed [max_int] (never wraps
    silently). *)

val geometric : u:float -> mean:int -> int
(** [geometric ~u ~mean] maps one uniform sample [u ∈ [0, 1)] to a
    geometric variate on [{0, 1, 2, …}] with expectation [mean] (success
    probability [1/(mean+1)]), by CDF inversion.  [mean = 0] always
    yields 0.  Pure: callers draw [u] from their own seeded
    [Random.State], so the simulated workload and the native lock
    service share one think-time distribution. *)

(** {2 Zipf sampling}

    The skewed key-popularity distribution of the YCSB-style workloads:
    rank [k ∈ 0..n-1] has weight [(k+1){^-theta}].  [theta = 0] is
    uniform; [theta ≈ 0.99] is the classical YCSB "zipfian" skew.  The
    sampler is exact (precomputed normalized CDF, one binary search per
    draw) and pure — like {!geometric}, callers draw [u] from their own
    seeded [Random.State], so the simulated and native KV drivers share
    one key distribution verbatim. *)

type zipf

val zipf : n:int -> theta:float -> zipf
(** Precompute the CDF over ranks [0..n-1].  O(n) time and floats, built
    once per key population.  Raises [Invalid_argument] if [n < 1] or
    [theta] is negative or not finite. *)

val zipf_n : zipf -> int
val zipf_theta : zipf -> float

val zipf_cdf : zipf -> int -> float
(** [zipf_cdf z k] is [P(rank <= k)] — exact, monotone in [k], and
    [zipf_cdf z (n-1) = 1.0].  Raises on a rank outside [0..n-1]. *)

val zipf_draw : zipf -> u:float -> int
(** [zipf_draw z ~u] inverts the CDF at [u ∈ [0, 1)]: the least rank [k]
    with [zipf_cdf z k > u].  Deterministic in [u]. *)

val mix_seed : int -> int -> int
(** [mix_seed root pid] deterministically derives a per-process seed from
    a root seed, with a splitmix64-style finalizer providing full
    avalanche: adjacent pids yield decorrelated seeds, so a large rig can
    give each of its processes an independent
    [Random.State.make [| mix_seed root pid |]] stream instead of
    serially advancing one global stream.  Always nonnegative; pure. *)
