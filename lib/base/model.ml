type t = int (* bitmask over Ops.to_index *)

let empty = 0
let bit op = 1 lsl Ops.to_index op
let mem op m = m land bit op <> 0
let add op m = m lor bit op
let of_list l = List.fold_left (fun m op -> add op m) empty l
let to_list m = List.filter (fun op -> mem op m) Ops.all
let union a b = a lor b
let subset a b = a land b = a
let equal (a : t) b = a = b
let cardinal m = List.length (to_list m)
let dual m = of_list (List.map Ops.dual (to_list m))
let is_self_dual m = equal m (dual m)

let tas_only = of_list [ Ops.Test_and_set ]
let tas_read = of_list [ Ops.Read; Ops.Test_and_set ]
let tas_tar_read = of_list [ Ops.Read; Ops.Test_and_set; Ops.Test_and_reset ]
let taf = of_list [ Ops.Test_and_flip ]
let rmw = of_list Ops.all
let read_write = of_list [ Ops.Read; Ops.Write_0; Ops.Write_1 ]

let named_columns =
  [ ("tas", tas_only);
    ("read+tas", tas_read);
    ("read+tas+tar", tas_tar_read);
    ("taf", taf);
    ("rmw", rmw) ]

let to_string m =
  match List.find_opt (fun (_, m') -> equal m m') named_columns with
  | Some (name, _) -> name
  | None ->
    "{" ^ String.concat "," (List.map Ops.to_string (to_list m)) ^ "}"

let pp ppf m = Format.pp_print_string ppf (to_string m)
