type t =
  | Skip
  | Read
  | Write_0
  | Test_and_reset
  | Write_1
  | Test_and_set
  | Flip
  | Test_and_flip

let all =
  [ Skip; Read; Write_0; Test_and_reset; Write_1; Test_and_set; Flip;
    Test_and_flip ]

let apply op v =
  (* A descriptive check rather than an assert: it must name the bad
     value and survive [-noassert] — a corrupted cell (e.g. an
     out-of-range [restore]) is a caller bug worth a real diagnostic. *)
  if v <> 0 && v <> 1 then
    invalid_arg (Printf.sprintf "Ops.apply: value %d is not a bit" v);
  match op with
  | Skip -> (v, None)
  | Read -> (v, Some v)
  | Write_0 -> (0, None)
  | Test_and_reset -> (0, Some v)
  | Write_1 -> (1, None)
  | Test_and_set -> (1, Some v)
  | Flip -> (1 - v, None)
  | Test_and_flip -> (1 - v, Some v)

let returns_value = function
  | Read | Test_and_reset | Test_and_set | Test_and_flip -> true
  | Skip | Write_0 | Write_1 | Flip -> false

let writes = function
  | Skip | Read -> false
  | Write_0 | Test_and_reset | Write_1 | Test_and_set | Flip | Test_and_flip
    -> true

let dual = function
  | Skip -> Skip
  | Read -> Read
  | Write_0 -> Write_1
  | Write_1 -> Write_0
  | Test_and_reset -> Test_and_set
  | Test_and_set -> Test_and_reset
  | Flip -> Flip
  | Test_and_flip -> Test_and_flip

let to_string = function
  | Skip -> "skip"
  | Read -> "read"
  | Write_0 -> "write-0"
  | Test_and_reset -> "test-and-reset"
  | Write_1 -> "write-1"
  | Test_and_set -> "test-and-set"
  | Flip -> "flip"
  | Test_and_flip -> "test-and-flip"

let of_string = function
  | "skip" -> Some Skip
  | "read" -> Some Read
  | "write-0" -> Some Write_0
  | "test-and-reset" | "tar" -> Some Test_and_reset
  | "write-1" -> Some Write_1
  | "test-and-set" | "tas" -> Some Test_and_set
  | "flip" -> Some Flip
  | "test-and-flip" | "taf" -> Some Test_and_flip
  | _ -> None

let pp ppf op = Format.pp_print_string ppf (to_string op)
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let to_index = function
  | Skip -> 0
  | Read -> 1
  | Write_0 -> 2
  | Test_and_reset -> 3
  | Write_1 -> 4
  | Test_and_set -> 5
  | Flip -> 6
  | Test_and_flip -> 7
