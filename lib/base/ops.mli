(** The eight single-bit operations of Section 3.1 of the paper.

    Each operation is defined by how it transforms the bit and whether it
    returns the old value.  The paper's naming models are subsets of these
    operations (see {!Model}).  [read] and [write-0]/[write-1] are also the
    primitives of the atomic-register model of Section 2 (there generalized
    to [l]-bit values; see {!Mem_intf}). *)

type t =
  | Skip            (** no effect, no return value *)
  | Read            (** no effect, returns current value *)
  | Write_0         (** sets the bit to 0, no return value *)
  | Test_and_reset  (** sets the bit to 0, returns the old value *)
  | Write_1         (** sets the bit to 1, no return value *)
  | Test_and_set    (** sets the bit to 1, returns the old value *)
  | Flip            (** complements the bit, no return value *)
  | Test_and_flip   (** complements the bit, returns the old value *)

val all : t list
(** The eight operations, in the paper's order. *)

val apply : t -> int -> int * int option
(** [apply op v] is [(v', ret)] where [v'] is the new bit value and [ret]
    the returned old value (if the operation returns one).
    Requires [v] ∈ {0,1}. *)

val returns_value : t -> bool
(** Whether the operation returns the old bit value. *)

val writes : t -> bool
(** Whether the operation can change the bit ([Skip] and [Read] do not). *)

val dual : t -> t
(** The dual operation (§3.2): exchanges the roles of 0 and 1.
    [Write_0 ↔ Write_1], [Test_and_reset ↔ Test_and_set]; the other four
    operations are self-dual.  [dual] is an involution. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
val to_index : t -> int
(** Stable index in [0..7], following the paper's numbering (skip = 0). *)
