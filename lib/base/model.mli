(** Models of Section 3.1: a model is the subset of the eight single-bit
    operations that the shared memory supports.  There are [2^8] models; the
    paper's naming table singles out five of them, predefined below. *)

type t
(** A set of {!Ops.t}, represented as a bitmask.  Immutable. *)

val empty : t
val of_list : Ops.t list -> t
val to_list : t -> Ops.t list
val mem : Ops.t -> t -> bool
val add : Ops.t -> t -> t
val union : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val cardinal : t -> int

val dual : t -> t
(** The dual model: each operation replaced by its dual (§3.2).  A bound
    holding for a model holds for its dual. *)

val is_self_dual : t -> bool

(** {1 The five models of the paper's naming table} *)

val tas_only : t
(** [{test-and-set}] — column 1: all four measures are [n-1]. *)

val tas_read : t
(** [{read, test-and-set}] — column 2: contention-free measures drop to
    [log n]. *)

val tas_tar_read : t
(** [{read, test-and-set, test-and-reset}] — column 3: worst-case register
    complexity drops to [log n], worst-case step remains [n-1]. *)

val taf : t
(** [{test-and-flip}] — column 4: [log n] on all four measures. *)

val rmw : t
(** All eight operations (the read–modify–write model) — column 5. *)

val read_write : t
(** [{read, write-0, write-1}]: naming is deterministically unsolvable here
    (symmetry cannot be broken); used in tests of that fact. *)

val named_columns : (string * t) list
(** The five table columns in paper order, with display names. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
