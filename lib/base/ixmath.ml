(* Preconditions raise [Invalid_argument] (not [assert]) so they survive
   -noassert builds, and every loop that grows a power is guarded against
   silent wraparound near [max_int]. *)

let pow2 k =
  if k < 0 || k >= 62 then invalid_arg "Ixmath.pow2: k outside 0..61";
  1 lsl k

let is_pow2 n = n > 0 && n land (n - 1) = 0

let floor_log2 n =
  if n < 1 then invalid_arg "Ixmath.floor_log2: n < 1";
  (* [v = 2^k <= n] throughout; once doubling would overflow, [v] already
     exceeds [max_int / 2 >= n / 2], so [k] is the answer. *)
  let rec loop k v =
    if v > n - v then k else loop (k + 1) (v * 2)
  in
  loop 0 1

let ceil_log2 n =
  if n < 1 then invalid_arg "Ixmath.ceil_log2: n < 1";
  let f = floor_log2 n in
  if is_pow2 n then f else f + 1

let bits_needed v =
  if v < 0 then invalid_arg "Ixmath.bits_needed: v < 0";
  if v = 0 then 1
  else if v = max_int then 62 (* v + 1 would wrap *)
  else ceil_log2 (v + 1)

let ceil_div a b =
  if b <= 0 || a < 0 then invalid_arg "Ixmath.ceil_div: b <= 0 or a < 0";
  (* (a + b - 1) / b overflows for a near max_int; divide first. *)
  (a / b) + if a mod b = 0 then 0 else 1

let ceil_log ~base n =
  if base < 2 || n < 1 then invalid_arg "Ixmath.ceil_log: base < 2 or n < 1";
  let rec loop d cap =
    if cap >= n then d
    else if cap > max_int / base then
      (* cap * base would wrap, yet cap < n <= max_int < cap * base: one
         more level certainly covers n. *)
      d + 1
    else loop (d + 1) (cap * base)
  in
  loop 1 base

let log2f x = log x /. log 2.0

let ipow b e =
  if b < 0 then invalid_arg "Ixmath.ipow: negative base";
  if e < 0 then invalid_arg "Ixmath.ipow: negative exponent";
  let rec loop acc e =
    if e = 0 then acc
    else begin
      if b > 1 && acc > max_int / b then
        invalid_arg "Ixmath.ipow: overflow";
      loop (acc * b) (e - 1)
    end
  in
  loop 1 e

let geometric ~u ~mean =
  if mean < 0 then invalid_arg "Ixmath.geometric: negative mean";
  if not (u >= 0. && u < 1.) then
    invalid_arg "Ixmath.geometric: u outside [0, 1)";
  if mean = 0 then 0
  else begin
    (* Inversion: X = floor(ln(1-u) / ln(1-p)) with success probability
       p = 1/(mean+1) is geometric on {0,1,2,...} with P(X >= k) =
       (1-p)^k and E[X] = (1-p)/p = mean.  log1p keeps precision for
       small p (large means). *)
    (* [mean + 1] as a float sum, not an int sum: for [mean = max_int]
       the int addition wraps to [min_int] and the draw went negative. *)
    let p = 1. /. (float_of_int mean +. 1.) in
    let x = Float.log1p (-.u) /. Float.log1p (-.p) in
    (* Clamp: x is finite and >= 0 for valid inputs, but guard the
       int conversion anyway. *)
    if x >= float_of_int max_int then max_int else int_of_float x
  end

(* Zipf(theta) over ranks 0..n-1 by exact CDF inversion: the cumulative
   weights sum_{i<=k} (i+1)^-theta are precomputed (normalized, O(n) floats,
   built once per population) and a draw is one binary search.  theta = 0
   degenerates to the uniform distribution; theta ~ 0.99 is the classical
   YCSB "zipfian" skew.  Pure draws: callers supply u from their own seeded
   [Random.State], exactly as for [geometric]. *)
type zipf = { z_n : int; z_theta : float; z_cum : float array }

let zipf ~n ~theta =
  if n < 1 then invalid_arg "Ixmath.zipf: n < 1";
  if not (Float.is_finite theta) || theta < 0. then
    invalid_arg "Ixmath.zipf: theta not finite and nonnegative";
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (Float.of_int (k + 1) ** -.theta);
    cum.(k) <- !acc
  done;
  let total = cum.(n - 1) in
  for k = 0 to n - 1 do
    cum.(k) <- cum.(k) /. total
  done;
  (* Normalization can leave the top a hair under 1.0; pin it so a draw
     at u -> 1 can never fall off the end of the search. *)
  cum.(n - 1) <- 1.0;
  { z_n = n; z_theta = theta; z_cum = cum }

let zipf_n z = z.z_n
let zipf_theta z = z.z_theta

let zipf_cdf z k =
  if k < 0 || k >= z.z_n then invalid_arg "Ixmath.zipf_cdf: rank outside 0..n-1";
  z.z_cum.(k)

let zipf_draw z ~u =
  if not (u >= 0. && u < 1.) then
    invalid_arg "Ixmath.zipf_draw: u outside [0, 1)";
  (* Least k with cum.(k) > u: invariant cum.(hi) > u throughout. *)
  let lo = ref 0 and hi = ref (z.z_n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.z_cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let mix_seed root pid =
  (* splitmix64 finalizer over the packed pair: full avalanche, so the
     per-process streams [Random.State.make [| mix_seed root pid |]] are
     decorrelated even for adjacent pids under one root — crucial when a
     10^6-process rig derives a million streams from one seed.  The
     result is truncated to a nonnegative OCaml int (62 bits kept). *)
  let open Int64 in
  let z = add (mul (of_int root) 0x9E3779B97F4A7C15L) (of_int pid) in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)
