let pow2 k =
  assert (k >= 0 && k < 62);
  1 lsl k

let is_pow2 n = n > 0 && n land (n - 1) = 0

let floor_log2 n =
  assert (n >= 1);
  let rec loop k v = if v > n then k - 1 else loop (k + 1) (v * 2) in
  loop 0 1

let ceil_log2 n =
  assert (n >= 1);
  let f = floor_log2 n in
  if is_pow2 n then f else f + 1

let bits_needed v =
  assert (v >= 0);
  max 1 (ceil_log2 (v + 1))

let ceil_div a b =
  assert (b > 0 && a >= 0);
  (a + b - 1) / b

let ceil_log ~base n =
  assert (base >= 2 && n >= 1);
  let rec loop d cap = if cap >= n then d else loop (d + 1) (cap * base) in
  loop 1 base

let log2f x = log x /. log 2.0

let ipow b e =
  assert (e >= 0);
  let rec loop acc e = if e = 0 then acc else loop (acc * b) (e - 1) in
  loop 1 e
