(** The shared-memory interface every algorithm is written against.

    An algorithm is a functor over [MEM].  The simulated backend
    ({!Cfc_runtime.Sim_mem}) turns each access into an effect handled by a
    deterministic scheduler and records it in a trace; the native backend
    ({!Cfc_native.Native_mem}) maps registers to [Atomic.t] cells so the very
    same algorithm code runs on real domains.

    Conventions:
    - a register holds a nonnegative integer smaller than [2^width];
    - [width] is the register's size in bits — the "atomicity" parameter [l]
      of the paper is the maximum width an algorithm ever accesses;
    - single-bit registers may restrict the allowed operations to a
      {!Model.t} (the naming models of §3.1); wider registers always allow
      plain [read]/[write]. *)

module type MEM = sig
  type reg
  (** A shared register. *)

  val alloc : ?name:string -> width:int -> init:int -> unit -> reg
  (** Allocate a fresh register of [width] bits initialized to [init].
      [name] is used in traces and error messages.
      Raises [Invalid_argument] if [init] does not fit in [width] bits. *)

  val alloc_bit : ?name:string -> model:Model.t -> init:int -> unit -> reg
  (** Allocate a single-bit register that supports exactly the operations of
      [model] (plus nothing else).  [init] ∈ {0,1}. *)

  val alloc_array :
    ?name:string -> width:int -> init:int -> int -> reg array
  (** [alloc_array ~width ~init k] allocates [k] registers; element [i] is
      named ["name[i]"]. *)

  val alloc_bit_array :
    ?name:string -> model:Model.t -> init:int -> int -> reg array

  val read : reg -> int
  (** One atomic read access.  On a model-restricted bit register this
      requires [Read] ∈ model. *)

  val write : reg -> int -> unit
  (** One atomic write access.  On a model-restricted bit register this
      requires the corresponding [Write_0]/[Write_1] ∈ model. *)

  val bit_op : reg -> Ops.t -> int option
  (** Apply one of the eight single-bit operations atomically; returns the
      old value for the value-returning operations.  Requires a 1-bit
      register whose model allows the operation. *)

  val write_field : reg -> index:int -> width:int -> int -> unit
  (** Multi-grain atomic access (the Michael–Scott packing the paper's
      §1.3 points to: "several registers of smaller size can be packed
      into one word of memory, enabling reads or writes to all or a
      subset of them in one atomic step").  [write_field r ~index ~width v]
      atomically replaces bits [index*width .. (index+1)*width - 1] of [r]
      with [v] — one step, the rest of the word untouched; a plain [read]
      of [r] then observes all packed sub-registers in one step.  Only on
      model-unrestricted registers; [v] must fit in [width] bits and the
      field must lie within the register. *)

  val fetch_and_store : reg -> int -> int
  (** Atomic exchange: write the value, return the old one — the classic
      word-level read-modify-write of contemporary multiprocessors
      (used by the local-spin queue lock that makes the §1.2 remote-
      access discussion concrete).  Model-unrestricted registers only. *)

  val compare_and_set : reg -> expected:int -> int -> bool
  (** Atomic compare-and-swap; true iff the register held [expected] and
      was replaced.  Model-unrestricted registers only. *)

  val pause : unit -> unit
  (** A local no-op scheduling hint inside busy-wait loops.  Costs no shared
      access.  The native backend maps it to [Domain.cpu_relax]. *)
end

(** A memory backend paired with the ability to run processes; algorithms
    only need [MEM], harnesses need the full backend (see the runtime and
    native libraries). *)
type mem = (module MEM)
