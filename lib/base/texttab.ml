type line = Row of string list | Sep

(* Column sizing counts code points, not bytes, so UTF-8 cells align
   (continuation bytes 0x80..0xBF are not new characters). *)
let display_length s =
  let n = ref 0 in
  String.iter
    (fun c ->
      if Char.code c land 0xC0 <> 0x80 then incr n)
    s;
  !n

type t = { header : string list; mutable lines : line list (* reversed *) }

let create ~header = { header; lines = [] }

let add_row t row =
  let ncols = List.length t.header in
  let len = List.length row in
  if len > ncols then invalid_arg "Texttab.add_row: too many cells";
  let row =
    if len = ncols then row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  t.lines <- Row row :: t.lines

let add_sep t = t.lines <- Sep :: t.lines

let render t =
  let lines = List.rev t.lines in
  let rows = t.header :: List.filter_map (function Row r -> Some r | Sep -> None) lines in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (display_length cell))
      row
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf
          (String.make (max 0 (widths.(i) - display_length cell)) ' ');
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  sep ();
  row t.header;
  sep ();
  List.iter (function Row r -> row r | Sep -> sep ()) lines;
  sep ();
  Buffer.contents buf

let print t = print_string (render t)
