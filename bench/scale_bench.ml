(* EXP-SCALE bench: the O(active-set) event-wheel rig at scale.

   Two sweeps, both deterministic in the seed and written to
   BENCH_scale.json (same accumulate-across-PRs idea as the native and
   mcheck benches):

   - CF curve: every supporting registry algorithm measured by the
     streaming harness (Wheel + Measures.Online, no trace) over
     n = 2^3 .. 2^16, plus n = 10^5 for the O(log n)/O(1) locks — each
     point checked against the registered closed forms.  A mismatch is
     an exit-1 failure: the closed forms are the paper's tables.

   - Chaos curve: the Jepsen-in-one-process rig — thousands of
     crash-recovering clients against one recoverable lock, seeded
     Fault.chaos, streamed Online measures + recoverable exclusion
     monitor.  The same config is re-run once to assert bit-for-bit
     determinism of the result record.

   Wall-clock columns are recorded for the record; the diff gate
   (scripts/bench_diff.py, family cfc-scale-bench) ignores them. *)

open Cfc_mutex
open Cfc_workload

let ns_full = [ 8; 16; 64; 256; 1024; 4096; 16384; 65536 ]
let ns_quick = [ 8; 16; 256; 4096 ]

(* The locks whose solo path is O(log n) or O(1): these carry the
   headline n = 10^5 point (the O(n)-CF locks would only make it slow,
   their curves are already pinned by 2^16). *)
let big_n = 100_000
let big_algs =
  [ Registry.tree; Registry.peterson_tournament; Registry.tas_lock;
    Registry.mcs ]

let cf_sweep ~quick =
  let ns = if quick then ns_quick else ns_full in
  let points =
    List.concat_map
      (fun alg ->
        let (module A : Mutex_intf.ALG) = alg in
        List.filter_map
          (fun n ->
            if A.supports (Mutex_intf.params n) then Some (alg, n) else None)
          ns)
      Registry.all
    @
    if quick then []
    else List.map (fun alg -> (alg, big_n)) big_algs
  in
  List.map
    (fun (alg, n) ->
      let row = Workload_report.scale_cf_row alg ~n in
      Printf.printf "%-24s n=%-7d cf=%-6d pred=%-6s regs=%-6d %-8s %.3fs\n%!"
        row.Workload_report.scf_alg n
        row.Workload_report.scf_sample.Cfc_core.Measures.steps
        (match row.Workload_report.scf_predicted_steps with
        | Some v -> string_of_int v
        | None -> "-")
        row.Workload_report.scf_sample.Cfc_core.Measures.registers
        (if row.Workload_report.scf_ok then "ok" else "MISMATCH")
        row.Workload_report.scf_wall_s;
      row)
    points

(* Chaos configs are identical in quick and full mode: the wheel makes
   them cheap (sleeping clients cost nothing), and identical keys are
   what lets bench_diff compare the quick CI run against the committed
   full run row by row. *)
let chaos_configs =
  [ ( Registry.rec_tas,
      { Workload.sc_n = 2048; sc_rounds = 2; sc_mean_think = 8192;
        sc_cs_len = 3; sc_seed = 42; sc_chaos_pairs = 2048 } );
    ( Registry.rec_queue,
      { Workload.sc_n = 12; sc_rounds = 2; sc_mean_think = 64;
        sc_cs_len = 3; sc_seed = 42; sc_chaos_pairs = 8 } ) ]

let chaos_sweep () =
  List.map
    (fun (alg, sc) ->
      let row = Workload_report.scale_chaos_row alg sc in
      let r = row.Workload_report.sch_result in
      Printf.printf
        "%-24s n=%-7d pairs=%-5d acq=%-6d crash=%-5d rec=%-5d entrymax=%-4d \
         rmrmax=%-4d live=%-4d %.3fs\n%!"
        row.Workload_report.sch_alg row.Workload_report.sch_n
        row.Workload_report.sch_pairs r.Workload.sr_acquisitions
        r.Workload.sr_crashes r.Workload.sr_recoveries
        r.Workload.sr_entry_steps_max r.Workload.sr_recovery_rmr_max
        r.Workload.sr_live_peak row.Workload_report.sch_wall_s;
      row)
    chaos_configs

(* Same seed, same config: the whole result record must be identical —
   the determinism claim of DESIGN.md's event-wheel row, asserted on a
   real crash-recovery run every time the bench runs. *)
let determinism_check () =
  let alg, sc = List.nth chaos_configs 1 in
  let a = Workload.run_mutex_scale alg sc in
  let b = Workload.run_mutex_scale alg sc in
  a = b

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  print_endline "== EXP-SCALE: streaming CF vs closed forms ==";
  let cf = cf_sweep ~quick in
  print_endline "== EXP-SCALE: chaos rig (crash-recovering clients) ==";
  let chaos = chaos_sweep () in
  let det = determinism_check () in
  Printf.printf "determinism: %s\n%!" (if det then "ok" else "DIVERGED");
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc "{\n  \"schema\": \"cfc-scale-bench/1\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"cf_entries\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map Workload_report.json_of_scale_cf_row cf));
  Printf.fprintf oc "  \"chaos_entries\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map Workload_report.json_of_scale_chaos_row chaos));
  Printf.fprintf oc "  \"determinism_ok\": %b\n}\n" det;
  close_out oc;
  Printf.printf "wrote BENCH_scale.json (%d cf rows, %d chaos rows)\n%!"
    (List.length cf) (List.length chaos);
  let bad = List.filter (fun r -> not r.Workload_report.scf_ok) cf in
  List.iter
    (fun r ->
      Printf.eprintf "closed-form mismatch: %s n=%d\n"
        r.Workload_report.scf_alg r.Workload_report.scf_n)
    bad;
  if bad <> [] || not det then exit 1
