(* Native lock-service benchmark: every supporting registry algorithm is
   swept over domain counts × think times on the instrumented backend,
   and the per-configuration throughput, acquisition-latency percentiles
   and RMR-per-acquisition estimates are written to BENCH_native.json
   (same accumulate-across-PRs idea as BENCH_mcheck.json).

   The headline column is rmr/acq: under saturation (think 0, max
   domains) the local-spin queue lock keeps it near its solo value while
   the spin-on-shared locks (tas, bakery, ...) grow with contention —
   the §1.2 remote-access discussion, measured.  Solo rows also carry
   the simulated solo remote-access count per acquisition, which must
   match the instrumented count exactly (a test asserts it; here it is
   recorded for the record). *)

open Cfc_runtime
open Cfc_mutex
open Cfc_native

type entry = {
  name : string;
  domains : int;
  mean_think : int;
  rounds : int;
  cs_len : int;
  r : Lock_service.result;
  sim_rmr_per_acq : float option;  (* solo rows only *)
}

(* The simulated twin of a solo lock-service run: same n=2 instance, same
   rounds and critical-section writes, process 0 alone on the schedule.
   Its YA93 remote-access count is the ground truth the instrumented
   counter must reproduce. *)
let sim_solo_rmr (module A : Mutex_intf.ALG) ~rounds ~cs_len =
  let p = Mutex_intf.params 2 in
  let memory = Memory.create () in
  let module M = (val Sim_mem.mem memory) in
  let module L = A.Make (M) in
  let inst = L.create p in
  let scratch = M.alloc ~name:"svc.scratch" ~width:8 ~init:0 () in
  let proc0 () =
    for _ = 1 to rounds do
      L.lock inst ~me:0;
      for k = 1 to cs_len do
        M.write scratch (k land 255)
      done;
      L.unlock inst ~me:0
    done
  in
  let procs = [| proc0; (fun () -> ()) |] in
  let out = Runner.run ~memory ~pick:(Schedule.solo 0) procs in
  let remote = Cfc_core.Measures.remote_accesses out.Runner.trace ~nprocs:2 in
  float_of_int remote.(0) /. float_of_int (max 1 rounds)

let run_one (module A : Mutex_intf.ALG) ~domains ~mean_think ~rounds ~cs_len =
  let config =
    { Lock_service.domains; rounds; mean_think; cs_len; seed = 42; crash_every = 0 }
  in
  let r = Lock_service.run (module A) config in
  if not r.Lock_service.exclusion_ok then begin
    Printf.eprintf "mutual exclusion violated: %s domains=%d\n" A.name domains;
    exit 1
  end;
  let sim_rmr_per_acq =
    if domains = 1 then Some (sim_solo_rmr (module A) ~rounds ~cs_len)
    else None
  in
  Printf.printf
    "%-18s d=%d think=%-3d %9.0f acq/s  p50=%-8.0f p99=%-8.0f rmr/acq=%6.2f%s\n%!"
    A.name domains mean_think r.Lock_service.throughput
    r.Lock_service.p50_ns r.Lock_service.p99_ns r.Lock_service.rmr_per_acq
    (match sim_rmr_per_acq with
    | Some s -> Printf.sprintf "  (sim %.2f)" s
    | None -> "");
  { name = A.name; domains; mean_think; rounds; cs_len; r; sim_rmr_per_acq }

let json_of_entry e =
  let c = e.r.Lock_service.counters in
  Printf.sprintf
    "    {\"name\": %S, \"domains\": %d, \"mean_think\": %d, \"rounds\": %d, \
     \"cs_len\": %d, \"acquisitions\": %d, \"elapsed_ns\": %d, \
     \"throughput\": %.1f, \"p50_ns\": %.1f, \"p90_ns\": %.1f, \
     \"p99_ns\": %.1f, \"max_ns\": %d, \"ops\": %d, \"reads\": %d, \
     \"writes\": %d, \"cas_attempts\": %d, \"cas_failures\": %d, \
     \"rmr\": %d, \"rmr_per_acq\": %.4f%s, \"exclusion_ok\": %b}"
    e.name e.domains e.mean_think e.rounds e.cs_len
    e.r.Lock_service.acquisitions e.r.Lock_service.elapsed_ns
    e.r.Lock_service.throughput e.r.Lock_service.p50_ns
    e.r.Lock_service.p90_ns e.r.Lock_service.p99_ns e.r.Lock_service.max_ns
    c.Instr_mem.ops c.Instr_mem.reads c.Instr_mem.writes
    c.Instr_mem.cas_attempts c.Instr_mem.cas_failures c.Instr_mem.rmr
    e.r.Lock_service.rmr_per_acq
    (match e.sim_rmr_per_acq with
    | Some s -> Printf.sprintf ", \"sim_rmr_per_acq\": %.4f" s
    | None -> "")
    e.r.Lock_service.exclusion_ok

(* Crash-injection sweep over every recoverable registry lock: seeded
   cooperative crashes while holding (see Lock_service.crash_every),
   with the crash also evicting the domain's cache-validity bits so the
   per-recovery RMR is the cold-cache figure the closed forms and the
   simulated sweep predict.  The RMR columns are deterministic (the
   recovery re-entry is a fixed access sequence and the eviction makes
   each distinct register remote exactly once); the latency columns are
   wall-clock and recorded for the record only. *)
type rec_entry = {
  re_name : string;
  re_domains : int;
  re_crash_every : int;
  re_rounds : int;
  re_r : Lock_service.result;
  re_predicted_rmr_held : int;  (* rec_registers_held: the closed form *)
}

let run_recoverable (module A : Mutex_intf.ALG) ~domains ~rounds =
  let config =
    { Lock_service.domains; rounds; mean_think = 0; cs_len = 3; seed = 42;
      crash_every = 4 }
  in
  let r = Lock_service.run (module A) config in
  if not r.Lock_service.exclusion_ok then begin
    Printf.eprintf "mutual exclusion violated under crashes: %s domains=%d\n"
      A.name domains;
    exit 1
  end;
  let forms = Option.get (A.recovery (Mutex_intf.params (max 2 domains))) in
  Printf.printf
    "%-18s d=%d crashes=%-4d rec p50=%-7.0f p99=%-7.0f rec rmr mean=%.2f \
     max=%d (predicted %d)\n%!"
    A.name domains r.Lock_service.recoveries r.Lock_service.recovery_p50_ns
    r.Lock_service.recovery_p99_ns r.Lock_service.recovery_rmr_mean
    r.Lock_service.recovery_rmr_max forms.Mutex_intf.rec_registers_held;
  { re_name = A.name; re_domains = domains; re_crash_every = 4;
    re_rounds = rounds; re_r = r;
    re_predicted_rmr_held = forms.Mutex_intf.rec_registers_held }

let json_of_rec_entry e =
  Printf.sprintf
    "    {\"name\": %S, \"domains\": %d, \"crash_every\": %d, \
     \"rounds\": %d, \"recoveries\": %d, \"recovery_p50_ns\": %.1f, \
     \"recovery_p99_ns\": %.1f, \"recovery_max_ns\": %d, \
     \"recovery_rmr_mean\": %.4f, \"recovery_rmr_max\": %d, \
     \"predicted_rmr_held\": %d, \"exclusion_ok\": %b}"
    e.re_name e.re_domains e.re_crash_every e.re_rounds
    e.re_r.Lock_service.recoveries e.re_r.Lock_service.recovery_p50_ns
    e.re_r.Lock_service.recovery_p99_ns e.re_r.Lock_service.recovery_max_ns
    e.re_r.Lock_service.recovery_rmr_mean
    e.re_r.Lock_service.recovery_rmr_max e.re_predicted_rmr_held
    e.re_r.Lock_service.exclusion_ok

(* The symbolic analyzer's prediction of the same distinction, from the
   access graph alone (no execution under contention): a register spun
   on inside a busy-wait cycle that other processes write only in
   straight-line code is bounded-RMR (local-spin); one written inside
   another process's cycle is not.  Recorded next to the measurement so
   the static-vs-measured comparison accumulates across runs. *)
let static_style name =
  match Registry.find name with
  | None -> "unknown"
  | Some alg -> (
    match Cfc_analysis.Subjects.of_mutex ~n:2 alg with
    | None -> "unknown"
    | Some subject ->
      Cfc_analysis.Analyze.(
        spin_class_name (analyze subject).spin_class))

(* Spin-style classification from the measurements themselves: an
   algorithm spins locally iff saturating it leaves rmr/acq within a
   small factor of its solo cost. *)
let classify entries =
  let find ~name ~domains ~think =
    List.find_opt
      (fun e -> e.name = name && e.domains = domains && e.mean_think = think)
      entries
  in
  let names = List.sort_uniq compare (List.map (fun e -> e.name) entries) in
  let max_domains =
    List.fold_left (fun m e -> max m e.domains) 1 entries
  in
  let min_think =
    List.fold_left (fun m e -> min m e.mean_think) max_int entries
  in
  Printf.printf "\n%-18s %10s %10s  %-15s %s\n" "algorithm" "solo rmr"
    "sat rmr" "measured" "static";
  List.filter_map
    (fun name ->
      match
        (find ~name ~domains:1 ~think:min_think,
         find ~name ~domains:max_domains ~think:min_think)
      with
      | Some solo, Some sat ->
        let s = solo.r.Lock_service.rmr_per_acq
        and c = sat.r.Lock_service.rmr_per_acq in
        let style = if c <= (4.0 *. s) +. 2.0 then "local-spin" else
            "spin-on-shared" in
        let static = static_style name in
        Printf.printf "%-18s %10.2f %10.2f  %-15s %s\n" name s c style static;
        Some (name, s, c, style, static)
      | _ -> None)
    names

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let domain_counts, thinks, rounds =
    if quick then ([ 1; 2 ], [ 0; 10 ], 200) else ([ 1; 2; 4 ], [ 0; 20 ], 2_000)
  in
  let cs_len = 3 in
  let entries =
    List.concat_map
      (fun (module A : Mutex_intf.ALG) ->
        List.concat_map
          (fun domains ->
            if A.supports (Mutex_intf.params (max 2 domains)) then
              List.map
                (fun mean_think ->
                  run_one (module A) ~domains ~mean_think ~rounds ~cs_len)
                thinks
            else [])
          domain_counts)
      Registry.all
  in
  print_newline ();
  let rec_entries =
    List.concat_map
      (fun ((module A : Mutex_intf.ALG) as alg) ->
        List.filter_map
          (fun domains ->
            if A.supports (Mutex_intf.params (max 2 domains)) then
              Some (run_recoverable alg ~domains ~rounds)
            else None)
          domain_counts)
      Registry.recoverable
  in
  let styles = classify entries in
  let json_styles =
    String.concat ",\n"
      (List.map
         (fun (name, solo, sat, style, static) ->
           Printf.sprintf
             "    {\"name\": %S, \"solo_rmr_per_acq\": %.4f, \
              \"saturated_rmr_per_acq\": %.4f, \"style\": %S, \
              \"static_style\": %S}"
             name solo sat style static)
         styles)
  in
  let oc = open_out "BENCH_native.json" in
  Printf.fprintf oc
    "{\n  \"schema\": \"cfc-native-bench/2\",\n  \"quick\": %b,\n  \
     \"entries\": [\n%s\n  ],\n  \"spin_styles\": [\n%s\n  ],\n  \
     \"recoverable\": [\n%s\n  ]\n}\n"
    quick
    (String.concat ",\n" (List.map json_of_entry entries))
    json_styles
    (String.concat ",\n" (List.map json_of_rec_entry rec_entries));
  close_out oc;
  Printf.printf "\nwrote BENCH_native.json (%d entries, %d recoverable)\n"
    (List.length entries) (List.length rec_entries)
