(* The benchmark harness: regenerates every table of the paper's
   evaluation (see DESIGN.md §4 for the experiment index).

   Part 1 — counted complexity (deterministic, the paper's actual
   metrics): Table M ("Bounds for mutual exclusion"), Table N ("Tight
   bounds for naming"), the Theorem 1-3 sweeps, the §2.6 contention
   detection bound, the unbounded worst-case demonstration, and the §4
   backoff experiment.

   Part 2 — wall-clock shape checks on the native Atomic/Domain backend
   with Bechamel (one Test.make group per table): absolute numbers are
   machine-dependent, but the orderings (Lamport constant vs tree
   Θ(log n / l) vs bakery Θ(n); naming models) reproduce the paper's
   relationships. *)

open Cfc_base
open Cfc_mutex

let section title =
  Printf.printf "\n=== %s ===\n\n%!" title

(* ------------------------------------------------------------------ *)
(* Part 1: counted complexity                                          *)
(* ------------------------------------------------------------------ *)

let table_mutex () =
  section "EXP-M: Bounds for mutual exclusion (paper table, symbolic)";
  Texttab.print (Cfc_core.Report.mutex_table_symbolic ());
  List.iter
    (fun (n, l) ->
      section (Printf.sprintf "EXP-M: mutual exclusion at n=%d, l=%d" n l);
      Texttab.print (Cfc_core.Report.mutex_table ~n ~l))
    [ (16, 2); (256, 4); (1024, 2); (4096, 12) ]

let thm_sweeps () =
  section
    "EXP-T1/T2/T3: lower bounds vs tree-of-Lamport measured vs upper bounds";
  Texttab.print
    (Cfc_core.Report.thm_sweep
       ~ns:[ 4; 16; 64; 256; 1024; 4096; 16384 ]
       ~ls:[ 2; 3; 4; 8; 14 ]);
  print_string
    "note: tree nodes hold 2^l - 1 slots (an l-bit gate must encode\n\
     'free'), so the measured depth can exceed the paper's ceil(log n/l)\n\
     by one level for small l; see DESIGN.md and EXPERIMENTS.md.\n"

let flat_vs_tree () =
  section "EXP-T3 corollary: Lamport flat (l = log n) is the 7-step limit";
  let t =
    Texttab.create
      ~header:[ "n"; "lamport cf steps"; "lamport cf regs"; "atomicity" ]
  in
  List.iter
    (fun n ->
      let p = Mutex_intf.params n in
      let r =
        Cfc_core.Mutex_harness.contention_free Registry.lamport_fast p
      in
      Texttab.add_row t
        [ string_of_int n;
          string_of_int r.Cfc_core.Mutex_harness.max.Cfc_core.Measures.steps;
          string_of_int
            r.Cfc_core.Mutex_harness.max.Cfc_core.Measures.registers;
          string_of_int r.Cfc_core.Mutex_harness.atomicity_observed ])
    [ 2; 16; 256; 4096 ];
  Texttab.print t

let table_naming () =
  section "EXP-N: Tight bounds for naming (paper table, symbolic)";
  Texttab.print (Cfc_core.Report.naming_table_symbolic ());
  List.iter
    (fun n ->
      section
        (Printf.sprintf
           "EXP-N: naming at n=%d (theory / measured; c-f exact, w-c \
            adversarial estimate)"
           n);
      Texttab.print (Cfc_core.Report.naming_table ~n))
    [ 16; 64; 256 ];
  section "EXP-T4: per-algorithm naming sweep";
  Texttab.print (Cfc_core.Report.naming_sweep ~ns:[ 4; 16; 64; 256 ])

let detection () =
  section "EXP-CD: contention detection, worst-case steps vs ceil(log n/l)";
  Texttab.print
    (Cfc_core.Report.detection_table
       ~ns:[ 8; 64; 1024; 65536 ]
       ~ls:[ 1; 2; 4; 8 ])

let unbounded () =
  section "EXP-WC-INF: worst-case mutex entry grows without bound [AT92]";
  Texttab.print
    (Cfc_core.Report.unbounded_table ~spins:[ 10; 100; 1000; 10000 ])

let backoff () =
  section
    "EXP-BACKOFF: §4 — winner's entry cost since release stays near the \
     contention-free cost; backoff cuts total traffic";
  Texttab.print
    (Cfc_workload.Workload_report.backoff_table ~n:6 ~rounds:50
       ~thinks:[ 0; 5; 40; 200 ] ~seed:11
       ~algs:[ Registry.lamport_fast; Registry.backoff; Registry.bakery ])

let recoverable () =
  section
    "EXP-REC: recoverable lock — crash-free contention-free cost and \
     solo crash-point sweep (predicted / measured)";
  (* [recoverable_table] skips unsupported sizes per lock (the packed
     queue word caps the queue lock at n <= 15 for l = 1). *)
  Texttab.print (Cfc_core.Report.recoverable_table ~ns:[ 2; 4; 8; 16; 64 ]);
  List.iter
    (fun ((module A : Mutex_intf.ALG) as alg) ->
      section
        (Printf.sprintf
           "EXP-REC: seeded crash-recovery chaos (%s, n=4, 2 crash-recovery \
            pairs per run)"
           A.name);
      let t, worst =
        Cfc_core.Report.faults_table ~alg ~n:4 ~pairs:2 ~seeds:[ 1; 2; 3; 4; 5 ]
      in
      Texttab.print t;
      match worst with
      | None -> ()
      | Some out ->
        (* A run that did not reach quiescence: print the structured
           post-mortem instead of a bare "completed = false". *)
        Format.printf "%a@." Cfc_runtime.Runner.pp_diagnosis out)
    Registry.recoverable

let remote_access () =
  section
    "EXP-LOCAL (§1.2 / YA93): remote memory references per process under      a write-invalidate cache, 6 processes, 10 acquisitions each, long      critical sections";
  let n = 6 and rounds = 10 and cs_len = 25 in
  let t =
    Texttab.create
      ~header:[ "algorithm"; "max remote accesses"; "per acquisition" ]
  in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params n in
      if A.supports p then begin
        let memory = Cfc_runtime.Memory.create () in
        let module M = (val Cfc_runtime.Sim_mem.mem memory) in
        let module L = A.Make (M) in
        let inst = L.create p in
        let scratch = M.alloc ~name:"scratch" ~width:8 ~init:0 () in
        let proc me () =
          for _ = 1 to rounds do
            Cfc_runtime.Proc.region Cfc_runtime.Event.Trying;
            L.lock inst ~me;
            Cfc_runtime.Proc.region Cfc_runtime.Event.Critical;
            for k = 1 to cs_len do
              M.write scratch (k land 255)
            done;
            Cfc_runtime.Proc.region Cfc_runtime.Event.Exiting;
            L.unlock inst ~me;
            Cfc_runtime.Proc.region Cfc_runtime.Event.Remainder
          done
        in
        let out =
          Cfc_runtime.Runner.run ~max_steps:5_000_000 ~memory
            ~pick:(Cfc_runtime.Schedule.round_robin ())
            (Array.init n proc)
        in
        let remote =
          Array.fold_left max 0
            (Cfc_core.Measures.remote_accesses out.Cfc_runtime.Runner.trace
               ~nprocs:n)
        in
        Texttab.add_row t
          [ A.name; string_of_int remote;
            Printf.sprintf "%.1f" (float_of_int remote /. float_of_int rounds)
          ]
      end)
    Registry.all;
  Texttab.print t;
  print_string
    "note: the shared scratch inside the critical section costs ~1 remote\n\
     write per acquisition (the holder keeps its cached copy valid), so\n\
     the numbers are dominated by each lock's own coherence traffic;\n\
     mcs-lock spins locally.  The packed variant's word is a write\n\
     hotspot: fewer steps (EXP-MS93) but more invalidations here.\n"

let renaming () =
  section
    "EXP-RENAME: adaptive one-shot renaming (Moir-Anderson grid) —      contention-free O(1), name space k(k+1)/2";
  let n = 12 in
  let t =
    Texttab.create
      ~header:[ "participants k"; "max name (seeded runs)"; "k(k+1)/2 bound";
                "cf steps" ]
  in
  let cf =
    Cfc_core.Renaming_harness.contention_free Cfc_renaming.Registry.ma_grid
      ~n
  in
  List.iter
    (fun k ->
      let participants = List.init k (fun i -> i) in
      let max_name =
        List.fold_left
          (fun acc seed ->
            let out =
              Cfc_core.Renaming_harness.run ~participants
                ~pick:(Cfc_runtime.Schedule.random ~seed)
                Cfc_renaming.Registry.ma_grid ~n
            in
            List.fold_left
              (fun acc (_, v) -> max acc v)
              acc
              (Cfc_core.Measures.decisions out.Cfc_runtime.Runner.trace
                 ~nprocs:n))
          0 [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      Texttab.add_row t
        [ string_of_int k; string_of_int max_name;
          string_of_int (Cfc_renaming.Ma_grid.name_space ~n ~k);
          string_of_int cf.Cfc_core.Renaming_harness.max.Cfc_core.Measures.steps
        ])
    [ 1; 2; 4; 8; 12 ];
  Texttab.print t

(* ------------------------------------------------------------------ *)
(* Part 2: wall-clock (Bechamel, native backend)                       *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let run_bechamel test =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let t = Texttab.create ~header:[ "benchmark"; "ns/op" ] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.1f" e
        | Some [] | None -> "n/a"
      in
      Texttab.add_row t [ name; est ])
    (List.sort compare rows);
  Texttab.print t

(* One Test.make per Table-M row family: uncontended lock/unlock. *)
let bech_mutex () =
  section
    "EXP-NATIVE (Table M wall-clock): uncontended lock+unlock, 1 domain";
  let mk name alg p =
    let (module A : Mutex_intf.ALG) = alg in
    if A.supports p then begin
      let module M = (val Cfc_native.Native_mem.mem ()) in
      let module L = A.Make (M) in
      let inst = L.create p in
      Some
        (Test.make ~name
           (Staged.stage (fun () ->
                L.lock inst ~me:0;
                L.unlock inst ~me:0)))
    end
    else None
  in
  let tests =
    List.filter_map
      (fun (name, alg, p) -> mk name alg p)
      [ ("lamport-fast n=64", Registry.lamport_fast, Mutex_intf.params 64);
        ("tree l=2 n=64", Registry.tree, { Mutex_intf.n = 64; l = 2 });
        ("tree l=3 n=64", Registry.tree, { Mutex_intf.n = 64; l = 3 });
        ("peterson-tournament n=64", Registry.peterson_tournament,
         Mutex_intf.params 64);
        ("kessels-tournament n=64", Registry.kessels_tournament,
         Mutex_intf.params 64);
        ("bakery n=64", Registry.bakery, Mutex_intf.params 64);
        ("tas-lock n=64", Registry.tas_lock, Mutex_intf.params 64);
        ("recoverable-tas n=64", Registry.rec_tas, Mutex_intf.params 64);
        (* the packed queue word caps the queue lock below n=64 *)
        ("recoverable-queue n=8", Registry.rec_queue, Mutex_intf.params 8);
        ("lamport-fast n=1024", Registry.lamport_fast,
         Mutex_intf.params 1024);
        ("lamport-packed n=1024", Registry.ms_packed,
         Mutex_intf.params 1024);
        ("bakery n=1024", Registry.bakery, Mutex_intf.params 1024) ]
  in
  run_bechamel (Test.make_grouped ~name:"mutex-uncontended" tests)

(* One Test.make per Table-N column: one full naming round at n=64,
   single domain (the contention-free regime). *)
let bech_naming () =
  section "EXP-NATIVE (Table N wall-clock): one naming round, n=64";
  let n = 64 in
  let mk (col, algs) =
    match
      List.find_opt
        (fun (module A : Cfc_naming.Naming_intf.ALG) -> A.supports ~n)
        algs
    with
    | None -> None
    | Some (module A : Cfc_naming.Naming_intf.ALG) ->
      Some
        (Test.make ~name:(col ^ " (" ^ A.name ^ ")")
           (Staged.stage (fun () ->
                let module M = (val Cfc_native.Native_mem.mem ()) in
                let module N = A.Make (M) in
                let inst = N.create ~n in
                (* one process's contention-free run *)
                ignore (Sys.opaque_identity (N.run inst)))))
  in
  let tests = List.filter_map mk Cfc_naming.Registry.columns in
  (* Setup-only calibration: arena + instance allocation without running
     a process — subtract this from the rows above to compare models. *)
  let baseline =
    Test.make ~name:"baseline (setup only)"
      (Staged.stage (fun () ->
           let module M = (val Cfc_native.Native_mem.mem ()) in
           let module N = Cfc_naming.Taf_tree.Make (M) in
           ignore (Sys.opaque_identity (N.create ~n))))
  in
  run_bechamel (Test.make_grouped ~name:"naming-cf" (baseline :: tests))

(* Contended wall-clock: domains hammering the lock, with and without
   backoff (the §4 experiment in real time). *)
let native_contended () =
  section "EXP-NATIVE: contended lock/unlock wall-clock (2 domains)";
  let domains = 2 in
  let t =
    Texttab.create ~header:[ "algorithm"; "ns/cycle"; "exclusion ok" ]
  in
  List.iter
    (fun alg ->
      let (module A : Mutex_intf.ALG) = alg in
      let p = Mutex_intf.params (max domains 2) in
      if A.supports p then begin
        let ns, ok =
          Cfc_native.Native_harness.contended ~iters:20_000 ~domains alg p
        in
        Texttab.add_row t
          [ A.name; Printf.sprintf "%.1f" ns; string_of_bool ok ]
      end)
    Registry.all;
  Texttab.print t

let () =
  let wall_clock =
    (* --no-wall-clock skips the timing-dependent part (CI hygiene). *)
    not (Array.exists (( = ) "--no-wall-clock") Sys.argv)
  in
  table_mutex ();
  thm_sweeps ();
  flat_vs_tree ();
  table_naming ();
  detection ();
  unbounded ();
  backoff ();
  recoverable ();
  remote_access ();
  renaming ();
  if wall_clock then begin
    bech_mutex ();
    bech_naming ();
    native_contended ()
  end;
  print_newline ()
