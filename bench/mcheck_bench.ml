(* Model-checker throughput benchmark: times the bounded exploration of
   every registry algorithm at fixed configurations and writes the
   results to BENCH_mcheck.json so successive PRs accumulate a perf
   trajectory (states, states/sec, wall time per entry).

   Every configuration runs on both engines — [replay] (re-execute the
   schedule prefix at every node; the pre-incremental behavior) and
   [incremental] (live system + checkpoint/undo) — so the JSON carries
   the speedup directly, and the identical state counts act as a
   cross-check that the faster engine explores exactly the same space. *)

open Cfc_mutex
open Cfc_mcheck

type entry = {
  name : string;
  kind : string;
  engine : string;
  n : int;
  extra : (string * int) list;  (* l / pairs / domains *)
  verdict : string;
  runs : int;
  states : int;
  pruned : int;
  truncated : bool;
  wall_s : float;
}

(* Most registry configurations finish in single-digit milliseconds, so a
   single timing is dominated by allocator/GC warmup; repeat within a small
   time budget and keep the fastest repetition (the run is deterministic,
   so the minimum is the right estimator). *)
let time f =
  let budget = 0.5 and max_iters = 50 in
  let best = ref infinity in
  let result = ref None in
  let started = Unix.gettimeofday () in
  let iters = ref 0 in
  while
    !iters < 3
    || (!iters < max_iters && Unix.gettimeofday () -. started < budget)
  do
    incr iters;
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let d = Unix.gettimeofday () -. t0 in
    if d < !best then best := d;
    result := Some r
  done;
  (Option.get !result, !best)

let stats_of = function
  | Explore.Ok s -> ("ok", s)
  | Explore.Violation { stats; _ } -> ("violation", stats)

let engines = [ ("replay", Explore.Replay); ("incremental", Explore.Incremental) ]

let entry ~name ~kind ~engine ~n ~extra f =
  let r, wall_s = time f in
  let verdict, s = stats_of r in
  Printf.printf "%-28s %-8s %-12s %8d states %9.0f states/s %8.3f s  %s\n%!"
    name kind engine s.Explore.states
    (float_of_int s.Explore.states /. wall_s)
    wall_s verdict;
  {
    name;
    kind;
    engine;
    n;
    extra;
    verdict;
    runs = s.Explore.runs;
    states = s.Explore.states;
    pruned = s.Explore.pruned;
    truncated = s.Explore.truncated;
    wall_s;
  }

let mutex_entries () =
  List.concat_map
    (fun (module A : Mutex_intf.ALG) ->
      let p = Mutex_intf.params 2 in
      if A.supports p then
        List.map
          (fun (ename, e) ->
            entry ~name:A.name ~kind:"mutex" ~engine:ename ~n:2 ~extra:[]
              (fun () -> Props.check_mutex ~engine:e (module A) p))
          engines
      else [])
    Registry.all

let fault_entries () =
  List.concat_map
    (fun pairs ->
      List.map
        (fun (ename, e) ->
          entry
            ~name:(Printf.sprintf "recoverable-tas pairs=%d" pairs)
            ~kind:"faults" ~engine:ename ~n:2
            ~extra:[ ("pairs", pairs) ]
            (fun () ->
              Props.check_mutex_recoverable ~engine:e ~pairs Registry.rec_tas
                (Mutex_intf.params 2)))
        engines)
    [ 1; 2 ]

let naming_entries () =
  List.concat_map
    (fun (module A : Cfc_naming.Naming_intf.ALG) ->
      List.concat_map
        (fun n ->
          if A.supports ~n then
            List.map
              (fun (ename, e) ->
                entry ~name:A.name ~kind:"naming" ~engine:ename ~n ~extra:[]
                  (fun () -> Props.check_naming ~engine:e (module A) ~n))
              engines
          else [])
        [ 2; 4 ])
    Cfc_naming.Registry.all

let json_of_entry e =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %d" k v) e.extra)
  in
  Printf.sprintf
    "    {\"name\": %S, \"kind\": %S, \"engine\": %S, \"n\": %d%s, \
     \"verdict\": %S, \"runs\": %d, \"states\": %d, \"pruned\": %d, \
     \"truncated\": %b, \"wall_s\": %.6f, \"states_per_sec\": %.1f}"
    e.name e.kind e.engine e.n extra e.verdict e.runs e.states e.pruned
    e.truncated e.wall_s
    (float_of_int e.states /. e.wall_s)

let () =
  let entries = mutex_entries () @ fault_entries () @ naming_entries () in
  (* Cross-check: both engines must agree on verdict and exact stats for
     every configuration. *)
  List.iter
    (fun e ->
      if e.engine = "incremental" then begin
        let r =
          List.find
            (fun e' ->
              e'.engine = "replay" && e'.name = e.name && e'.kind = e.kind
              && e'.n = e.n && e'.extra = e.extra)
            entries
        in
        if
          (e.verdict, e.runs, e.states, e.pruned, e.truncated)
          <> (r.verdict, r.runs, r.states, r.pruned, r.truncated)
        then begin
          Printf.eprintf "engine mismatch on %s (%s, n=%d)\n" e.name e.kind e.n;
          exit 1
        end
      end)
    entries;
  let oc = open_out "BENCH_mcheck.json" in
  Printf.fprintf oc
    "{\n  \"schema\": \"cfc-mcheck-bench/2\",\n  \"entries\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_of_entry entries));
  close_out oc;
  Printf.printf "\nwrote BENCH_mcheck.json (%d entries)\n" (List.length entries)
