(* Model-checker throughput benchmark: times the bounded exploration of
   every registry algorithm at fixed configurations and writes the
   results to BENCH_mcheck.json so successive PRs accumulate a perf
   trajectory (states, states/sec, wall time per entry).

   Mutex configurations run on four engines — [replay] (re-execute the
   schedule prefix at every node; the pre-incremental behavior),
   [incremental] (live system + checkpoint/undo), [por] (incremental
   plus the access-graph partial-order reduction) and [por+sym] (POR
   composed with the pid-symmetry canonicalisation, for the algorithms
   whose access graphs admit a group) — so the JSON carries the
   speedups directly.  Identical state counts between replay and
   incremental, and identical verdicts between the reduced engines and
   incremental, act as cross-checks that the faster engines answer the
   same question.  Two gated extras: the n=4 tournament-lock headline
   (exhaustive, non-truncated, 500k state cap, hash-compacted seen set)
   and a pooled-vs-private shared-seen-set pair at domains=4 whose
   pooled row must explore strictly fewer states.

   The n sweep is explicit: every supported (algorithm, n) pair in the
   sweep gets a row, and rows that hit a bound say which bound
   ([trunc_reason]), so a config that stops producing n=3 rows is a
   visible regression rather than a silent cap.  The replay engine is
   skipped at n >= 3 — it is the reference implementation, pinned at
   n=2, and re-executing prefixes over tens of thousands of states adds
   minutes for no extra signal.

   [--quick] times each entry once instead of min-of-reps; states,
   verdicts and prune counts are deterministic either way, so CI diffs
   quick output against the committed file. *)

open Cfc_mutex
open Cfc_mcheck

type entry = {
  name : string;
  kind : string;
  engine : string;
  n : int;
  extra : (string * int) list;  (* l / pairs / domains / share_seen *)
  verdict : string;
  runs : int;
  states : int;
  pruned_dedup : int;
  pruned_sym : int;
  pruned_por : int;
  fp_collisions : int;
  seen_pop : int;
  seen_cap : int;
  truncated : bool;
  trunc_reason : string;  (* "" | "max-states" | "depth-or-steps" *)
  wall_s : float;
  wall_hint_s : float option;
      (* same run with the memo table pre-sized via [seen_hint] *)
}

let quick = Array.exists (( = ) "--quick") Sys.argv

(* Most registry configurations finish in single-digit milliseconds, so a
   single timing is dominated by allocator/GC warmup; repeat within a small
   time budget and keep the fastest repetition (the run is deterministic,
   so the minimum is the right estimator).  Entries that already exceed
   the budget run once — n=3 state spaces are big enough that warmup
   noise is irrelevant.  [--quick] always runs once. *)
let time f =
  let budget = 0.5 and max_iters = 50 in
  let best = ref infinity in
  let result = ref None in
  let started = Unix.gettimeofday () in (* lint-allow: wall-clock — benchmark timer *)
  let iters = ref 0 in
  let continue () =
    !iters = 0
    || (not quick)
       && !iters < max_iters
       && !best < budget
       && (!iters < 3
          || (* lint-allow: wall-clock — benchmark timer *) Unix.gettimeofday () -. started < budget)
  in
  while continue () do
    incr iters;
    let t0 = Unix.gettimeofday () in (* lint-allow: wall-clock — benchmark timer *)
    let r = f () in
    let d = Unix.gettimeofday () -. t0 in (* lint-allow: wall-clock — benchmark timer *)
    if d < !best then best := d;
    result := Some r
  done;
  (Option.get !result, !best)

let stats_of = function
  | Explore.Ok s -> ("ok", s)
  | Explore.Violation { stats; _ } -> ("violation", stats)

let reason (config : Explore.config) (s : Explore.stats) =
  if not s.Explore.truncated then ""
  else if s.Explore.states >= config.Explore.max_states then "max-states"
  else "depth-or-steps"

(* [hint], when given, re-times the same run with the memo table
   pre-sized to the measured state count (the [seen_hint] perf knob):
   the pair of wall times in the JSON is the before/after of table
   rehashing. *)
let entry ?hint ~config ~name ~kind ~engine ~n ~extra f =
  let r, wall_s = time f in
  let verdict, s = stats_of r in
  let wall_hint_s =
    match hint with
    | None -> None
    | Some g ->
      let r', w = time (fun () -> g ~seen_hint:s.Explore.states) in
      let verdict', s' = stats_of r' in
      (* the hint by design changes the initial capacity, nothing else *)
      let scrub st = { st with Explore.seen_cap = 0 } in
      if (verdict', scrub s') <> (verdict, scrub s) then begin
        Printf.eprintf "seen_hint changed the result on %s (%s, n=%d)\n"
          name kind n;
        exit 1
      end;
      Some w
  in
  Printf.printf
    "%-28s %-8s %-12s n=%d %8d states %9.0f states/s %8.3f s%s  %s%s\n%!"
    name kind engine n s.Explore.states
    (float_of_int s.Explore.states /. wall_s)
    wall_s
    (match wall_hint_s with
    | None -> ""
    | Some w -> Printf.sprintf " (hinted %.3f s)" w)
    verdict
    (match reason config s with "" -> "" | r -> " [" ^ r ^ "]");
  {
    name;
    kind;
    engine;
    n;
    extra;
    verdict;
    runs = s.Explore.runs;
    states = s.Explore.states;
    pruned_dedup = s.Explore.pruned_dedup;
    pruned_sym = s.Explore.pruned_sym;
    pruned_por = s.Explore.pruned_por;
    fp_collisions = s.Explore.fp_collisions;
    seen_pop = s.Explore.seen_pop;
    seen_cap = s.Explore.seen_cap;
    truncated = s.Explore.truncated;
    trunc_reason = reason config s;
    wall_s;
    wall_hint_s;
  }

(* n=3 state spaces are 1–2 orders of magnitude bigger; cap them so the
   bench stays a bench.  Rows that hit the cap carry "max-states". *)
let config_of_n n =
  if n <= 2 then Explore.default_config
  else
    { Explore.max_depth = 90; max_steps_per_proc = 25; max_states = 150_000 }

let mutex_ns = [ 2; 3 ]

let mutex_entries () =
  List.concat_map
    (fun (module A : Mutex_intf.ALG) ->
      List.concat_map
        (fun n ->
          let p = Mutex_intf.params n in
          if not (A.supports p) then []
          else begin
            let config = config_of_n n in
            let run ?independence ?symmetry ?seen_hint ~engine () =
              Props.check_mutex ~config ~engine ?independence ?symmetry
                ?seen_hint (module A) p
            in
            let replay_rows =
              if n > 2 then []
              else
                [
                  entry ~config ~name:A.name ~kind:"mutex" ~engine:"replay"
                    ~n ~extra:[]
                    (fun () -> run ~engine:Explore.Replay ());
                ]
            in
            let inc =
              entry ~config ~name:A.name ~kind:"mutex" ~engine:"incremental"
                ~n ~extra:[]
                ~hint:(fun ~seen_hint ->
                  run ~engine:Explore.Incremental ~seen_hint ())
                (fun () -> run ~engine:Explore.Incremental ())
            in
            let por_rows =
              match Independence.mutex (module A) p with
              | None ->
                Printf.eprintf "note: no independence model for %s n=%d\n%!"
                  A.name n;
                []
              | Some independence ->
                let por =
                  entry ~config ~name:A.name ~kind:"mutex" ~engine:"por" ~n
                    ~extra:[]
                    (fun () ->
                      run ~engine:Explore.Incremental ~independence ())
                in
                (* Symmetry composed on top of POR, for the algorithms
                   whose access graphs admit a non-trivial pid group
                   (the pid-ordered scans — tree-lamport, the lamport
                   fasts — and the context-dependent kessels writes
                   admit none; that absence is itself pinned by the
                   test suite). *)
                let sym_rows =
                  match Symmetry.mutex (module A) p with
                  | None -> []
                  | Some symmetry ->
                    [
                      entry ~config ~name:A.name ~kind:"mutex"
                        ~engine:"por+sym" ~n ~extra:[]
                        (fun () ->
                          run ~engine:Explore.Incremental ~independence
                            ~symmetry ());
                    ]
                in
                por :: sym_rows
            in
            replay_rows @ (inc :: por_rows)
          end)
        mutex_ns)
    Registry.all

(* The n=4 headline: the tournament locks — the paper's Theorem 3 tree
   structure — verified exhaustively (non-truncated) within a 500k state
   cap under the full reduction stack.  peterson composes all three
   (symmetry x POR x compact); kessels has no sound pid group (its two
   sides write the turn registers with different expressions), so its
   exhaustive verdict comes from POR x compact alone.  tree-lamport's
   POR-reduced space exceeds 2M states at n=4 (and its pid-ordered scan
   admits no literal symmetry either), so it gets no row here — see
   EXPERIMENTS.md EXP-SYM for the measurement. *)
let n4_config =
  { Explore.max_depth = 120; max_steps_per_proc = 120; max_states = 500_000 }

let n4_headline =
  [ ("peterson-2p-tournament", "por+sym+compact");
    ("kessels-2p-tournament", "por+compact") ]

let n4_entries () =
  List.filter_map
    (fun ((module A : Mutex_intf.ALG) as alg) ->
      match List.assoc_opt A.name n4_headline with
      | None -> None
      | Some engine ->
        let n = 4 in
        let p = Mutex_intf.params n in
        let independence = Independence.mutex alg p in
        let symmetry =
          if String.length engine >= 7 && String.sub engine 0 7 = "por+sym"
          then Symmetry.mutex alg p
          else None
        in
        if independence = None then begin
          Printf.eprintf "no independence model for %s n=4\n" A.name;
          exit 1
        end;
        Some
          (entry ~config:n4_config ~name:A.name ~kind:"mutex" ~engine ~n
             ~extra:[]
             (fun () ->
               Props.check_mutex ~config:n4_config
                 ~engine:Explore.Incremental ?independence ?symmetry
                 ~compact:true alg p)))
    Registry.all

(* Prune pooling: the same POR-reduced search fanned over 4 domains with
   the shared seen set on and off.  With private per-branch tables the
   branches re-discover each other's states, so the pooled row must
   explore strictly fewer states — asserted in the main gate below.
   Pooled stats depend on worker timing (the verdict and schedule do
   not), so bench_diff treats share_seen=1 state counts as notes. *)
let domains_entries () =
  let ((module A : Mutex_intf.ALG) as alg) = Registry.tree in
  let n = 3 in
  let p = Mutex_intf.params n in
  let config = config_of_n n in
  match Independence.mutex alg p with
  | None ->
    Printf.eprintf "no independence model for %s n=%d\n" A.name n;
    exit 1
  | Some independence ->
    List.map
      (fun share ->
        entry ~config ~name:A.name ~kind:"mutex" ~engine:"por" ~n
          ~extra:[ ("domains", 4); ("share_seen", if share then 1 else 0) ]
          (fun () ->
            Props.check_mutex ~config ~engine:Explore.Incremental
              ~independence ~domains:4 ~share_seen:share alg p))
      [ true; false ]

let engines =
  [ ("replay", Explore.Replay); ("incremental", Explore.Incremental) ]

(* Every recoverable registry lock plus the deliberately broken queue
   fixture (expected verdict: violation — the diff gate fails the build
   if a change ever makes the checker miss it again). *)
let fault_algs : (string * Registry.alg) list =
  List.map
    (fun ((module A : Mutex_intf.ALG) as alg) -> (A.name, alg))
    Registry.recoverable
  @ [ ("fixture-broken-recovery-queue", Cfc_mcheck.Fixtures.broken_recovery_queue) ]

let fault_entries () =
  List.concat_map
    (fun (name, alg) ->
      List.concat_map
        (fun pairs ->
          List.map
            (fun (ename, e) ->
              entry ~config:Explore.default_config
                ~name:(Printf.sprintf "%s pairs=%d" name pairs)
                ~kind:"faults" ~engine:ename ~n:2
                ~extra:[ ("pairs", pairs) ]
                (fun () ->
                  Props.check_mutex_recoverable ~engine:e ~pairs alg
                    (Mutex_intf.params 2)))
            engines)
        [ 1; 2 ])
    fault_algs

let naming_entries () =
  List.concat_map
    (fun (module A : Cfc_naming.Naming_intf.ALG) ->
      List.concat_map
        (fun n ->
          if A.supports ~n then
            List.map
              (fun (ename, e) ->
                entry ~config:Explore.default_config ~name:A.name
                  ~kind:"naming" ~engine:ename ~n ~extra:[]
                  (fun () -> Props.check_naming ~engine:e (module A) ~n))
              engines
          else [])
        [ 2; 4 ])
    Cfc_naming.Registry.all

let json_of_entry e =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %d" k v) e.extra)
  in
  Printf.sprintf
    "    {\"name\": %S, \"kind\": %S, \"engine\": %S, \"n\": %d%s, \
     \"verdict\": %S, \"runs\": %d, \"states\": %d, \"pruned_dedup\": %d, \
     \"pruned_sym\": %d, \"pruned_por\": %d, \"fp_collisions\": %d, \
     \"seen_pop\": %d, \"seen_cap\": %d, \"truncated\": %b, \
     \"trunc_reason\": %S, \"wall_s\": %.6f%s, \"states_per_sec\": %.1f}"
    e.name e.kind e.engine e.n extra e.verdict e.runs e.states e.pruned_dedup
    e.pruned_sym e.pruned_por e.fp_collisions e.seen_pop e.seen_cap
    e.truncated e.trunc_reason e.wall_s
    (match e.wall_hint_s with
    | None -> ""
    | Some w -> Printf.sprintf ", \"wall_hint_s\": %.6f" w)
    (float_of_int e.states /. e.wall_s)

let find_engine entries e engine =
  List.find_opt
    (fun e' ->
      e'.engine = engine && e'.name = e.name && e'.kind = e.kind
      && e'.n = e.n && e'.extra = e.extra)
    entries

let () =
  let entries =
    (* bind in order: [@] evaluates right-to-left, and the console log
       should follow the JSON layout *)
    let mutex = mutex_entries () in
    let n4 = n4_entries () in
    let domains = domains_entries () in
    let faults = fault_entries () in
    let naming = naming_entries () in
    mutex @ n4 @ domains @ faults @ naming
  in
  (* Cross-checks: replay and incremental must agree on verdict and
     exact stats wherever both ran; the reduced engines (por, por+sym)
     must agree with incremental on the verdict (they explore a reduced
     space, so states differ — that is the point). *)
  List.iter
    (fun e ->
      if e.engine = "incremental" then begin
        (match find_engine entries e "replay" with
        | None -> ()
        | Some r ->
          if
            (e.verdict, e.runs, e.states, e.pruned_dedup, e.truncated)
            <> (r.verdict, r.runs, r.states, r.pruned_dedup, r.truncated)
          then begin
            Printf.eprintf "engine mismatch on %s (%s, n=%d)\n" e.name e.kind
              e.n;
            exit 1
          end);
        List.iter
          (fun engine ->
            match find_engine entries e engine with
            | None -> ()
            | Some p ->
              if e.verdict <> p.verdict then begin
                Printf.eprintf "%s verdict mismatch on %s (%s, n=%d)\n"
                  engine e.name e.kind e.n;
                exit 1
              end)
          [ "por"; "por+sym" ]
      end)
    entries;
  (* Headline gate: the tournament locks must come back exhaustive —
     verdict ok and no truncation — at n=4 under the reduction stack.
     A growth of the reduced state space past the 500k cap shows up
     here, not as a silently truncated row. *)
  List.iter
    (fun (name, engine) ->
      match
        List.find_opt
          (fun e -> e.name = name && e.engine = engine && e.n = 4)
          entries
      with
      | None ->
        Printf.eprintf "missing n=4 headline row %s/%s\n" name engine;
        exit 1
      | Some e ->
        if e.verdict <> "ok" || e.truncated then begin
          Printf.eprintf
            "n=4 headline regressed: %s/%s verdict=%s truncated=%b (%s)\n"
            name engine e.verdict e.truncated e.trunc_reason;
          exit 1
        end)
    n4_headline;
  (* Prune-pooling gate: with the shared seen set the 4-domain search
     must explore strictly fewer states than with private per-branch
     tables. *)
  (match
     List.filter
       (fun e -> List.mem_assoc "share_seen" e.extra)
       entries
   with
  | [ pooled; unpooled ] when List.assoc "share_seen" pooled.extra = 1 ->
    if pooled.states >= unpooled.states then begin
      Printf.eprintf
        "prune pooling ineffective: shared %d states vs private %d\n"
        pooled.states unpooled.states;
      exit 1
    end
  | _ ->
    Printf.eprintf "expected exactly one pooled/unpooled row pair\n";
    exit 1);
  (* Negative-fixture gate: the broken recovery queue must come back
     refuted on every fault row, and the real recoverable locks clean —
     fail the bench (and with it CI) on the spot, not just on diff. *)
  List.iter
    (fun e ->
      if e.kind = "faults" then begin
        let broken =
          String.length e.name >= 7 && String.sub e.name 0 7 = "fixture"
        in
        if broken && e.verdict <> "violation" then begin
          Printf.eprintf "broken fixture NOT refuted: %s (%s)\n" e.name
            e.engine;
          exit 1
        end;
        if (not broken) && e.verdict <> "ok" then begin
          Printf.eprintf "recoverable lock refuted: %s (%s)\n" e.name e.engine;
          exit 1
        end
      end)
    entries;
  let oc = open_out "BENCH_mcheck.json" in
  Printf.fprintf oc
    "{\n  \"schema\": \"cfc-mcheck-bench/4\",\n  \"entries\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_of_entry entries));
  close_out oc;
  Printf.printf "\nwrote BENCH_mcheck.json (%d entries)\n"
    (List.length entries)
