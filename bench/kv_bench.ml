(* EXP-KV bench: the sharded lock-backed KV service under Zipfian YCSB
   traffic, on both drivers, written to BENCH_kv.json.

   - Wheel grid: registry lock × θ ∈ {0, 0.6, 0.99} × mix ∈ {A, E} on
     the deterministic event-wheel driver (Kv_sim).  The base grid
     (256 clients) is identical in quick and full mode — like the scale
     bench's chaos configs, identical keys are what lets bench_diff
     compare a quick CI run against the committed baseline row by row;
     full mode adds the same grid at 4096 clients.  Every field except
     wall_s is deterministic in the seed.

   - Native grid: the same locks × θ × mix A on Kv_service
     (domain-parallel, Instr_mem-instrumented).  Wall-clock columns are
     noisy on CI runners; the diff gate asserts only the exclusion
     witnesses and a 50× throughput floor.

   - Determinism: one wheel config re-run and compared field for field.

   Witness failures (lost updates / torn scans) are exit-1 failures. *)

open Cfc_mutex
open Cfc_workload

let locks =
  [ Registry.tas_lock; Registry.mcs; Registry.backoff; Registry.tree;
    Registry.peterson_tournament; Registry.kessels_tournament ]

let thetas = [ 0.0; 0.6; 0.99 ]
let wheel_mixes = [ Ycsb.mix_a; Ycsb.mix_e ]

let wheel_config ~clients ~theta ~mix =
  { Kv_sim.kc_clients = clients; kc_buckets = 16; kc_keys = 4096;
    kc_ops = 4; kc_mean_think = 4 * clients; kc_theta = theta;
    kc_mix = mix; kc_seed = 42 }

let wall f =
  let t0 = Unix.gettimeofday () in (* lint-allow: wall-clock — benchmark timer *)
  let r = f () in
  (r, Unix.gettimeofday () -. t0 (* lint-allow: wall-clock — benchmark timer *))

type wheel_row = {
  wr_alg : string;
  wr_clients : int;
  wr_theta : float;
  wr_mix : string;
  wr_r : Kv_sim.kv_result;
  wr_wall : float;
}

let wheel_row alg ~clients ~theta ~mix =
  let (module A : Mutex_intf.ALG) = alg in
  let kc = wheel_config ~clients ~theta ~mix in
  let r, w = wall (fun () -> Kv_sim.run alg kc) in
  Printf.printf
    "wheel  %-24s n=%-5d th=%-4.2f mix=%s acq=%-6d lost=%d torn=%d \
     hot=%.3f entmax=%-5d turns=%-8d %.3fs\n%!"
    A.name clients theta mix.Ycsb.mix_name r.Kv_sim.kr_acquisitions
    r.kr_lost_updates r.kr_torn_scans r.kr_hot_share r.kr_entry_steps_max
    r.kr_turns w;
  { wr_alg = A.name; wr_clients = clients; wr_theta = theta;
    wr_mix = mix.Ycsb.mix_name; wr_r = r; wr_wall = w }

(* The 2^12-client rows only carry the locks whose contended entry is
   O(1)/O(log n); the O(n)-scan locks (lamport-fast derivatives, the
   tree's spin) are already pinned by the 256-client grid and would
   make the full sweep run for hours, not minutes. *)
let big_locks =
  [ Registry.tas_lock; Registry.mcs; Registry.peterson_tournament;
    Registry.kessels_tournament ]

let wheel_sweep ~quick =
  let base =
    List.concat_map
      (fun alg ->
        List.concat_map
          (fun theta ->
            List.map (fun mix -> wheel_row alg ~clients:256 ~theta ~mix)
              wheel_mixes)
          thetas)
      locks
  in
  if quick then base
  else
    base
    @ List.concat_map
        (fun alg ->
          List.map
            (fun theta ->
              wheel_row alg ~clients:4096 ~theta ~mix:Ycsb.mix_a)
            [ 0.0; 0.99 ])
        big_locks

type native_row = {
  nr_alg : string;
  nr_domains : int;
  nr_theta : float;
  nr_mix : string;
  nr_r : Cfc_native.Kv_service.result;
  nr_wall : float;
}

let native_sweep ~quick =
  let domains_list = if quick then [ 2 ] else [ 2; 4 ] in
  let ops = if quick then 400 else 4_000 in
  let keys = if quick then 1 lsl 16 else 1 lsl 20 in
  List.concat_map
    (fun domains ->
      List.concat_map
        (fun alg ->
          let (module A : Mutex_intf.ALG) = alg in
          List.map
            (fun theta ->
              let c =
                { Cfc_native.Kv_service.domains; buckets = 16; keys; ops;
                  mean_think = 10; theta; mix = Ycsb.mix_a; seed = 42 }
              in
              let r, w = wall (fun () -> Cfc_native.Kv_service.run alg c) in
              Printf.printf
                "native %-24s d=%-2d th=%-4.2f mix=A thr=%-9.0f excl=%-5b \
                 hot=%.3f rmr/op=%-6.2f p99=%-8.0f %.3fs\n%!"
                A.name domains theta r.Cfc_native.Kv_service.throughput
                r.Cfc_native.Kv_service.exclusion_ok
                r.Cfc_native.Kv_service.hot_share
                r.Cfc_native.Kv_service.rmr_per_op
                r.Cfc_native.Kv_service.p99_ns w;
              { nr_alg = A.name; nr_domains = domains; nr_theta = theta;
                nr_mix = "A"; nr_r = r; nr_wall = w })
            thetas)
        locks)
    domains_list

(* Same seed, same config: the whole wheel result record must be
   identical — the determinism claim EXP-KV inherits from the wheel. *)
let determinism_check () =
  let kc = wheel_config ~clients:256 ~theta:0.99 ~mix:Ycsb.mix_a in
  let a = Kv_sim.run Registry.mcs kc in
  let b = Kv_sim.run Registry.mcs kc in
  a = b

let json_of_wheel_row w =
  let r = w.wr_r in
  Printf.sprintf
    "    {\"name\": \"%s\", \"driver\": \"wheel\", \"clients\": %d, \
     \"theta\": %.2f, \"mix\": \"%s\", \"ops\": %d, \"acquisitions\": %d, \
     \"lost_updates\": %d, \"torn_scans\": %d, \"hot_share\": %.6f, \
     \"entry_steps_max\": %d, \"turns\": %d, \"total_steps\": %d, \
     \"spawned\": %d, \"live_peak\": %d, \"wall_s\": %.3f}"
    w.wr_alg w.wr_clients w.wr_theta w.wr_mix r.Kv_sim.kr_ops
    r.kr_acquisitions r.kr_lost_updates r.kr_torn_scans r.kr_hot_share
    r.kr_entry_steps_max r.kr_turns r.kr_total_steps r.kr_spawned
    r.kr_live_peak w.wr_wall

let json_of_native_row n =
  let r = n.nr_r in
  Printf.sprintf
    "    {\"name\": \"%s\", \"driver\": \"native\", \"domains\": %d, \
     \"theta\": %.2f, \"mix\": \"%s\", \"ops\": %d, \"throughput\": %.0f, \
     \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"rmr_per_op\": %.3f, \
     \"lost_updates\": %d, \"torn_scans\": %d, \"exclusion_ok\": %b, \
     \"hot_share\": %.6f, \"wall_s\": %.3f}"
    n.nr_alg n.nr_domains n.nr_theta n.nr_mix
    r.Cfc_native.Kv_service.total_ops r.Cfc_native.Kv_service.throughput
    r.Cfc_native.Kv_service.p50_ns r.Cfc_native.Kv_service.p99_ns
    r.Cfc_native.Kv_service.rmr_per_op r.Cfc_native.Kv_service.lost_updates
    r.Cfc_native.Kv_service.torn_scans r.Cfc_native.Kv_service.exclusion_ok
    r.Cfc_native.Kv_service.hot_share n.nr_wall

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  print_endline "== EXP-KV: wheel driver (deterministic) ==";
  let wheel_rows = wheel_sweep ~quick in
  print_endline "== EXP-KV: native driver (domain-parallel) ==";
  let native_rows = native_sweep ~quick in
  let det = determinism_check () in
  Printf.printf "determinism: %s\n%!" (if det then "ok" else "DIVERGED");
  let oc = open_out "BENCH_kv.json" in
  Printf.fprintf oc "{\n  \"schema\": \"cfc-kv-bench/1\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  Printf.fprintf oc "  \"wheel_entries\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_wheel_row wheel_rows));
  Printf.fprintf oc "  \"native_entries\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map json_of_native_row native_rows));
  Printf.fprintf oc "  \"determinism_ok\": %b\n}\n" det;
  close_out oc;
  Printf.printf "wrote BENCH_kv.json (%d wheel rows, %d native rows)\n%!"
    (List.length wheel_rows) (List.length native_rows);
  let wheel_bad =
    List.filter
      (fun w ->
        w.wr_r.Kv_sim.kr_lost_updates <> 0
        || w.wr_r.Kv_sim.kr_torn_scans <> 0)
      wheel_rows
  in
  let native_bad =
    List.filter
      (fun n -> not n.nr_r.Cfc_native.Kv_service.exclusion_ok)
      native_rows
  in
  List.iter
    (fun w ->
      Printf.eprintf "witness failure: wheel %s theta=%.2f mix=%s\n" w.wr_alg
        w.wr_theta w.wr_mix)
    wheel_bad;
  List.iter
    (fun n ->
      Printf.eprintf "witness failure: native %s domains=%d theta=%.2f\n"
        n.nr_alg n.nr_domains n.nr_theta)
    native_bad;
  if wheel_bad <> [] || native_bad <> [] || not det then exit 1
